#include "cli/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/analysis.hpp"
#include "coor/coor.hpp"
#include "engine/registry.hpp"
#include "engine/supervisor.hpp"
#include "flowpass/pass.hpp"
#include "metrics/efficiency.hpp"
#include "modelcheck/impl.hpp"
#include "obs/causal.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "rio/rio.hpp"
#include "support/clock.hpp"
#include "support/format.hpp"
#include "support/json.hpp"
#include "support/json_read.hpp"
#include "stf/stf.hpp"
#include "workloads/workloads.hpp"

namespace rio::cli {
namespace {

bool to_u64(const std::string& s, std::uint64_t& out) {
  const char* b = s.data();
  const char* e = b + s.size();
  const auto r = std::from_chars(b, e, out);
  return r.ec == std::errc{} && r.ptr == e;
}

bool to_u32(const std::string& s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!to_u64(s, v) || v > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Virtual-time backends never execute bodies, so building counter kernels
/// for them would be wasted setup; every real backend gets real bodies.
workloads::BodyKind body_for(const engine::Backend& backend) {
  return backend.caps().virtual_time ? workloads::BodyKind::kNone
                                     : workloads::BodyKind::kCounter;
}

/// Builds the selected workload with explicit task bodies; returns false +
/// error on unknown names. The chaos sweep passes kFold to get
/// oracle-checkable data, everything else derives the kind from the engine.
bool build_workload(const Options& o, workloads::BodyKind body,
                    workloads::Workload& out, std::string& error) {
  if (o.workload == "independent") {
    workloads::IndependentSpec s;
    s.num_tasks = o.tasks;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_independent(s);
  } else if (o.workload == "random") {
    workloads::RandomDepsSpec s;
    s.num_tasks = o.tasks;
    s.task_cost = o.task_size;
    s.body = body;
    s.seed = o.seed;
    s.num_workers = o.workers;
    out = workloads::make_random_deps(s);
  } else if (o.workload == "chain") {
    workloads::ChainSpec s;
    s.num_tasks = o.tasks;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_chain(s);
  } else if (o.workload == "gemm") {
    workloads::GemmDagSpec s;
    s.tiles = o.tiles;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_gemm_dag(s);
  } else if (o.workload == "lu") {
    workloads::LuDagSpec s;
    s.row_tiles = o.tiles;
    s.col_tiles = o.tiles;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_lu_dag(s);
  } else if (o.workload == "cholesky") {
    workloads::CholeskyDagSpec s;
    s.tiles = o.tiles;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_cholesky_dag(s);
  } else if (o.workload == "stencil") {
    workloads::StencilSpec s;
    s.chunks = o.width;
    s.steps = o.steps;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_stencil_dag(s);
  } else if (o.workload.rfind("taskbench:", 0) == 0) {
    const std::string name = o.workload.substr(10);
    workloads::TaskBenchSpec s;
    bool found = false;
    for (auto p : workloads::kAllTaskBenchPatterns)
      if (name == workloads::to_string(p)) {
        s.pattern = p;
        found = true;
      }
    if (!found) {
      error = "unknown taskbench pattern '" + name + "'";
      return false;
    }
    s.width = o.width;
    s.steps = o.steps;
    s.task_cost = o.task_size;
    s.body = body;
    s.num_workers = o.workers;
    out = workloads::make_taskbench(s);
  } else if (o.workload.rfind("lintfix:", 0) == 0) {
    // Seeded-bad flows from src/analysis — each carries exactly one hazard
    // so `rioflow lint` can demonstrate (and tests can assert) the finding.
    const std::string name = o.workload.substr(8);
    if (name == "uninit-read") {
      out.flow = analysis::fixtures::bad_uninit_read();
    } else if (name == "dead-write") {
      out.flow = analysis::fixtures::bad_dead_write();
    } else if (name == "unused-handle") {
      out.flow = analysis::fixtures::bad_unused_handle();
    } else if (name == "redundant-edge") {
      out.flow = analysis::fixtures::bad_redundant_edge();
    } else if (name == "race") {
      out.flow = analysis::fixtures::injected_race().flow;
    } else if (name == "phase-mapping") {
      out.flow = analysis::fixtures::bad_phase_mapping().flow;
    } else if (name == "empty-phase") {
      out.flow = analysis::fixtures::bad_empty_phase().flow;
    } else if (name == "cross-phase-dep") {
      out.flow = analysis::fixtures::cross_phase_dep().flow;
    } else if (name == "tiny-tasks") {
      out.flow = analysis::fixtures::bad_tiny_tasks();
    } else {
      error = "unknown lint fixture '" + name +
              "' (uninit-read|dead-write|unused-handle|redundant-edge|race|"
              "phase-mapping|empty-phase|cross-phase-dep|tiny-tasks)";
      return false;
    }
    out.name = o.workload;
  } else {
    error = "unknown workload '" + o.workload + "'";
    return false;
  }
  return true;
}

bool pick_mapping(const Options& o, const workloads::Workload& wl,
                  rt::Mapping& out, std::string& error) {
  if (o.mapping == "rr") {
    out = rt::mapping::round_robin(o.workers);
  } else if (o.mapping == "block") {
    out = rt::mapping::block(wl.flow.num_tasks(), o.workers);
  } else if (o.mapping == "owner") {
    out = wl.mapping(o.workers);
  } else {
    error = "unknown mapping '" + o.mapping + "' (rr|block|owner)";
    return false;
  }
  return true;
}

bool pick_policy(const Options& o, support::WaitPolicy& out,
                 std::string& error) {
  if (o.policy == "spin") out = support::WaitPolicy::kSpin;
  else if (o.policy == "yield") out = support::WaitPolicy::kSpinYield;
  else if (o.policy == "block") out = support::WaitPolicy::kBlock;
  else {
    error = "unknown policy '" + o.policy + "' (spin|yield|block)";
    return false;
  }
  return true;
}

bool pick_scheduler(const Options& o, coor::SchedulerKind& out,
                    std::string& error) {
  if (o.scheduler == "fifo") out = coor::SchedulerKind::kFifo;
  else if (o.scheduler == "lifo") out = coor::SchedulerKind::kLifo;
  else if (o.scheduler == "locality") out = coor::SchedulerKind::kLocality;
  else if (o.scheduler == "priority") out = coor::SchedulerKind::kPriority;
  else {
    error = "unknown scheduler '" + o.scheduler + "'";
    return false;
  }
  return true;
}

bool pick_queue(const Options& o, coor::QueueKind& out, std::string& error) {
  if (o.queue == "locked") out = coor::QueueKind::kLocked;
  else if (o.queue == "ring") out = coor::QueueKind::kRing;
  else {
    error = "unknown queue '" + o.queue + "' (locked|ring)";
    return false;
  }
  return true;
}

/// Assembles an engine::Launch from the CLI knobs. Only the string parsing
/// can fail (exit 1); capability mismatches are the registry's job and
/// surface later as one structured UnsupportedLaunch (exit 2).
bool make_launch(const Options& o, const workloads::Workload& wl,
                 engine::Launch& launch, std::string& error) {
  launch.workers = o.workers;
  if (!pick_mapping(o, wl, launch.mapping, error)) return false;
  if (!pick_policy(o, launch.wait_policy, error)) return false;
  if (!pick_scheduler(o, launch.scheduler, error)) return false;
  if (!pick_queue(o, launch.queue, error)) return false;
  return true;
}

bool parse_fail_on(const std::string& s, analysis::Severity& out,
                   std::string& error) {
  if (s == "error") out = analysis::Severity::kError;
  else if (s == "warning") out = analysis::Severity::kWarning;
  else if (s == "info") out = analysis::Severity::kInfo;
  else {
    error = "unknown --fail-on '" + s + "' (error|warning|info)";
    return false;
  }
  return true;
}

/// `rioflow lint`: pure static analysis, nothing executes.
int run_lint(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;
  analysis::Severity threshold{};
  if (!parse_fail_on(o.fail_on, threshold, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  workloads::Workload wl;
  // Static analysis: bodies never run, so the kind does not matter.
  if (!build_workload(o, workloads::BodyKind::kCounter, wl, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  stf::DependencyGraph graph(wl.flow);
  rt::Mapping mapping;
  if (!pick_mapping(o, wl, mapping, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  analysis::LintOptions lo;
  lo.mapping = &mapping;
  lo.num_workers = o.workers;
  lo.counter_bits = o.counter_bits;
  lo.fusion_threshold = o.fuse_threshold;
  // The phase fixtures carry their hybrid partition with them; regular
  // workloads have no phase structure to lint (RH4xx needs a partition).
  std::vector<analysis::LintPhase> phases;
  if (o.workload == "lintfix:phase-mapping")
    phases = analysis::fixtures::bad_phase_mapping().phases;
  else if (o.workload == "lintfix:empty-phase")
    phases = analysis::fixtures::bad_empty_phase().phases;
  else if (o.workload == "lintfix:cross-phase-dep")
    phases = analysis::fixtures::cross_phase_dep().phases;
  if (!phases.empty()) lo.phases = &phases;
  const analysis::Report report = analysis::lint_flow(wl.flow, graph, lo);
  out << "-- lint: " << wl.name << " --\n";
  report.print(out);
  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    report.write_json(f, "rio.lint.v1");
    out << "wrote " << o.json_path << "\n";
  }
  return report.count_at_least(threshold) > 0 ? 3 : 0;
}

/// `rioflow check`: execute with sync recording, then validate the trace
/// (interval test) and run the happens-before race checker on top.
int run_check(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;
  analysis::Severity threshold{};
  if (!parse_fail_on(o.fail_on, threshold, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  const engine::Backend* backend =
      engine::Registry::instance().find_or_error(o.engine, error);
  if (backend == nullptr) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  workloads::Workload wl;
  if (!build_workload(o, body_for(*backend), wl, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  stf::DependencyGraph graph(wl.flow);

  stf::Trace trace;
  stf::SyncTrace sync;
  bool worker_in_order = false;
  if (o.workload == "lintfix:race") {
    // The injected fixture IS the recorded execution: replay it instead of
    // running (a real run of this flow is correctly ordered).
    auto fx = analysis::fixtures::injected_race();
    trace = std::move(fx.trace);
    sync = std::move(fx.sync);
  } else {
    engine::Launch launch;
    if (!make_launch(o, wl, launch, error)) {
      err << "rioflow: " << error << "\n";
      return 1;
    }
    launch.collect_trace = true;
    launch.collect_sync = true;
    const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
    try {
      engine::Outcome outcome = backend->run(image, launch);
      trace = std::move(outcome.trace);
      sync = std::move(outcome.sync);
    } catch (const engine::UnsupportedLaunch& e) {
      // One registry-generated error for every "that engine cannot record
      // sync events" case — sims, seq, hybrid alike.
      err << "rioflow: " << e.what() << "\n";
      return 2;
    }
    worker_in_order = backend->caps().in_order;
  }

  out << "-- check: " << wl.name << " --\n";
  const stf::ValidationResult vr =
      trace.validate(wl.flow, graph, worker_in_order);
  if (!vr.ok())
    out << "interval validation: FAILED (" << vr.reason << ")\n";
  else if (!vr.timing_checked)
    out << "interval validation: skipped (" << vr.reason << ")\n";
  else
    out << "interval validation: ok\n";

  const analysis::Report report = analysis::check_happens_before(wl.flow, sync);
  report.print(out);
  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    analysis::Report full = report;
    full.add_metric(std::string("interval validation: ") +
                    (vr.ok() ? (vr.timing_checked ? "ok" : "skipped")
                             : "failed"));
    full.write_json(f, "rio.check.v1");
    out << "wrote " << o.json_path << "\n";
  }
  if (!vr.ok()) return 2;
  return report.count_at_least(threshold) > 0 ? 3 : 0;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

/// Parses the "--retry-tasks id=N,id=N" override list into the policy's
/// per-task attempt budgets (support::RetryPolicy::task_attempts).
bool parse_retry_tasks(const std::string& spec, support::RetryPolicy& retry,
                       std::string& error) {
  for (const std::string& part : split_csv(spec)) {
    const auto eq = part.find('=');
    std::uint64_t task = 0;
    std::uint32_t attempts = 0;
    if (eq == std::string::npos || !to_u64(part.substr(0, eq), task) ||
        !to_u32(part.substr(eq + 1), attempts) || attempts == 0) {
      error = "bad --retry-tasks entry '" + part + "' (want id=N, N >= 1)";
      return false;
    }
    retry.task_attempts.emplace_back(task, attempts);
  }
  return true;
}

/// Byte image of every data object in a registry — the oracle comparand.
std::vector<std::vector<std::byte>> data_image(const stf::DataRegistry& reg) {
  std::vector<std::vector<std::byte>> img(reg.size());
  for (std::size_t d = 0; d < reg.size(); ++d) {
    const auto id = static_cast<stf::DataId>(d);
    img[d].resize(reg.bytes(id));
    if (!img[d].empty()) std::memcpy(img[d].data(), reg.raw(id), img[d].size());
  }
  return img;
}

/// `rioflow chaos`: run the selected workloads under a deterministic
/// fault-plan sweep (kinds x seeds x rates x engines) with retry+rollback
/// and the progress watchdog enabled, verifying every surviving run
/// byte-for-byte against the sequential oracle. Crash cells kill workers
/// permanently and run under engine::run_supervised, so the oracle check
/// additionally covers evict-and-remap recovery.
int run_chaos(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;
  const std::vector<std::string> engines = split_csv(o.engines);
  if (engines.empty()) {
    err << "rioflow: --engines is empty\n";
    return 1;
  }
  std::vector<std::string> kinds;
  if (o.faults == "all") kinds = {"transient", "stall", "crash"};
  else if (o.faults == "transient" || o.faults == "stall" ||
           o.faults == "crash")
    kinds = {o.faults};
  else {
    err << "rioflow: unknown --faults '" << o.faults
        << "' (transient|stall|crash|all)\n";
    return 1;
  }
  const bool crashes =
      std::find(kinds.begin(), kinds.end(), "crash") != kinds.end();
  if (crashes && o.workers < 2) {
    err << "rioflow: --faults crash needs --workers >= 2 (the survivors "
           "absorb the evicted worker's tasks)\n";
    return 1;
  }
  for (const std::string& e : engines) {
    const engine::Backend* b =
        engine::Registry::instance().find_or_error(e, error);
    if (b == nullptr) {
      err << "rioflow: " << error << "\n";
      return 1;
    }
    if (!b->caps().executes_bodies) {
      // The sweep verifies data bytes against the sequential oracle, which
      // is meaningless when task bodies never run (virtual-time backends).
      err << "rioflow: engine '" << e
          << "' cannot run chaos: task bodies never execute "
             "(no executes_bodies capability)\n";
      return 2;
    }
    if (crashes && !b->caps().supports_recovery) {
      err << "rioflow: engine '" << e
          << "' cannot run crash chaos: no supports_recovery capability "
             "(see `rioflow engines`)\n";
      return 2;
    }
  }
  if (o.fault_rate < 0.0 || o.fault_rate > 1.0) {
    err << "rioflow: --fault-rate must be in [0, 1]\n";
    return 1;
  }
  support::RetryPolicy retry{.max_attempts = o.retries};
  if (!o.retry_tasks.empty() &&
      !parse_retry_tasks(o.retry_tasks, retry, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  support::WaitPolicy policy{};
  coor::SchedulerKind scheduler{};
  if (!pick_policy(o, policy, error) || !pick_scheduler(o, scheduler, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }

  const std::vector<std::string> wl_names =
      o.workload_given ? split_csv(o.workload)
                       : std::vector<std::string>{"chain", "cholesky"};
  std::vector<double> rates{o.fault_rate};
  if (!o.quick && o.fault_rate > 0.0)
    rates.push_back(std::min(1.0, o.fault_rate * 2.0));
  const std::uint32_t seeds =
      o.quick ? std::min<std::uint32_t>(o.fault_seeds, 2) : o.fault_seeds;

  std::uint64_t runs = 0, ok = 0, exhausted = 0, stalled = 0, mismatched = 0,
                lost = 0, unexpected = 0, total_throws = 0, total_stalls = 0,
                total_crashes = 0, total_evictions = 0, total_replayed = 0,
                total_retried = 0;

  // One row per (workload, engine, kind, rate, seed) cell for --json.
  struct ChaosCell {
    std::string workload, engine, kind, verdict;
    double rate = 0.0;
    std::uint64_t seed = 0, throws = 0, stalls = 0, crashes = 0,
                  evictions = 0, replayed = 0;
    bool ok = false;
  };
  std::vector<ChaosCell> cells;

  for (const std::string& wname : wl_names) {
    Options wo = o;
    wo.workload = wname;
    if (o.quick) {
      wo.tasks = std::min<std::uint64_t>(wo.tasks, 256);
      wo.tiles = std::min<std::uint32_t>(wo.tiles, 4);
      wo.task_size = std::min<std::uint64_t>(wo.task_size, 200);
    }

    // Sequential oracle: the same flow with fold bodies, executed in flow
    // order — byte-identical to any fault-free dependency-respecting run.
    std::vector<std::vector<std::byte>> oracle;
    {
      workloads::Workload wl;
      if (!build_workload(wo, workloads::BodyKind::kFold, wl, error)) {
        err << "rioflow: " << error << "\n";
        return 1;
      }
      stf::SequentialExecutor{}.run(wl.flow);
      oracle = data_image(wl.flow.registry());
    }

    for (const std::string& ename : engines) {
      const engine::Backend& backend =
          *engine::Registry::instance().find(ename);
      for (const std::string& kind : kinds) {
        for (double rate : rates) {
          for (std::uint32_t s = 0; s < seeds; ++s) {
            // Fresh flow per run: data starts from zero again.
            workloads::Workload wl;
            if (!build_workload(wo, workloads::BodyKind::kFold, wl, error)) {
              err << "rioflow: " << error << "\n";
              return 1;
            }
            engine::Launch launch;
            if (!pick_mapping(wo, wl, launch.mapping, error)) {
              err << "rioflow: " << error << "\n";
              return 1;
            }

            support::FaultPlan plan;
            plan.seed = o.seed + s;
            if (kind == "transient") {
              plan.throw_rate = rate;
            } else if (kind == "stall") {
              // Bounded stall windows well inside the watchdog budget: the
              // run must survive them, not trip the tripwire.
              plan.stall_rate = rate;
              plan.stall_ns = 2'000'000;
              plan.max_stalls = 4;
            } else {
              // Permanent worker deaths, capped so the supervisor always
              // has a survivor left to absorb the evicted worker's tasks.
              plan.crash_rate = rate;
              plan.max_crashes = std::min<std::uint32_t>(o.workers - 1, 2);
            }
            support::FaultInjector injector(plan);

            launch.workers = o.workers;
            launch.wait_policy = policy;
            launch.scheduler = scheduler;
            launch.collect_stats = false;
            launch.retry = retry;
            launch.fault = &injector;
            launch.watchdog_ns = o.watchdog_ms * 1'000'000ull;
            const stf::FlowImage image = stf::FlowImage::compile(wl.flow);

            ++runs;
            bool survived = false;
            std::string verdict;
            engine::Outcome outcome;
            try {
              // Crash cells go through the supervisor: worker loss becomes
              // evict-and-remap + resume instead of a run abort.
              outcome = kind == "crash"
                            ? engine::run_supervised(backend, image, launch)
                            : backend.run(image, launch);
              survived = true;
              verdict = "ok";
            } catch (const engine::UnsupportedLaunch& e) {
              err << "rioflow: " << e.what() << "\n";
              return 2;
            } catch (const stf::WorkerLost& l) {
              ++lost;
              verdict = "WORKER LOST (task " +
                        std::to_string(l.deaths().empty()
                                           ? 0
                                           : l.deaths().front().task) +
                        ", unrecovered)";
            } catch (const stf::StallError&) {
              ++stalled;
              verdict = "STALLED";
            } catch (const stf::TaskFailure& f) {
              ++exhausted;
              verdict = "exhausted (task " + std::to_string(f.report().task) +
                        " after " + std::to_string(f.report().attempts) +
                        " attempts)";
            } catch (const std::exception& e) {
              ++unexpected;
              verdict = std::string("ERROR: ") + e.what();
            }
            if (survived) {
              if (data_image(wl.flow.registry()) == oracle) {
                ++ok;
              } else {
                ++mismatched;
                verdict = "ORACLE MISMATCH";
              }
            }
            const std::uint64_t injected = injector.injected_throws() +
                                           injector.injected_stalls() +
                                           injector.injected_crashes();
            if (injected > 0) ++total_retried;
            total_throws += injector.injected_throws();
            total_stalls += injector.injected_stalls();
            total_crashes += injector.injected_crashes();
            total_evictions += outcome.evictions;
            total_replayed += outcome.tasks_replayed;
            cells.push_back({wname, ename, kind, verdict, rate, plan.seed,
                             injector.injected_throws(),
                             injector.injected_stalls(),
                             injector.injected_crashes(), outcome.evictions,
                             outcome.tasks_replayed, verdict == "ok"});

            out << "chaos: " << wname << " engine=" << ename
                << " kind=" << kind << " rate=" << rate
                << " seed=" << plan.seed
                << " throws=" << injector.injected_throws()
                << " crashes=" << injector.injected_crashes();
            if (outcome.evictions > 0)
              out << " evicted=" << outcome.evictions
                  << " replayed=" << outcome.tasks_replayed;
            out << " -> " << verdict << "\n";
          }
        }
      }
    }
  }

  out << "-- chaos summary --\n"
      << "runs=" << runs << " ok=" << ok << " exhausted=" << exhausted
      << " stalled=" << stalled << " mismatched=" << mismatched
      << " worker-lost=" << lost << " errors=" << unexpected
      << " injected-throws=" << total_throws
      << " injected-stalls=" << total_stalls
      << " injected-crashes=" << total_crashes
      << " evictions=" << total_evictions
      << " tasks-replayed=" << total_replayed
      << " runs-with-faults=" << total_retried << "\n";
  const bool bad = stalled > 0 || mismatched > 0 || lost > 0 || unexpected > 0;
  out << (bad ? "chaos: FAILED\n"
              : "chaos: all surviving runs matched the sequential oracle\n");
  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    f << "{\n  \"schema\": \"rio.chaos.v2\",\n  \"runs\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const ChaosCell& c = cells[i];
      f << (i == 0 ? "\n" : ",\n") << "    {\"workload\": "
        << support::json_quote(c.workload)
        << ", \"engine\": " << support::json_quote(c.engine)
        << ", \"kind\": " << support::json_quote(c.kind)
        << ", \"rate\": " << support::json_double(c.rate)
        << ", \"seed\": " << c.seed << ", \"throws\": " << c.throws
        << ", \"stalls\": " << c.stalls << ", \"crashes\": " << c.crashes
        << ", \"evictions\": " << c.evictions
        << ", \"replayed\": " << c.replayed
        << ", \"ok\": " << (c.ok ? "true" : "false")
        << ", \"verdict\": " << support::json_quote(c.verdict) << "}";
    }
    f << (cells.empty() ? "]" : "\n  ]") << ",\n  \"summary\": {\"runs\": "
      << runs << ", \"ok\": " << ok << ", \"exhausted\": " << exhausted
      << ", \"stalled\": " << stalled << ", \"mismatched\": " << mismatched
      << ", \"worker_lost\": " << lost << ", \"errors\": " << unexpected
      << ", \"injected_throws\": " << total_throws
      << ", \"injected_stalls\": " << total_stalls
      << ", \"injected_crashes\": " << total_crashes
      << ", \"evictions\": " << total_evictions
      << ", \"tasks_replayed\": " << total_replayed
      << ", \"runs_with_faults\": " << total_retried
      << "},\n  \"failed\": " << (bad ? "true" : "false") << "\n}\n";
    out << "wrote " << o.json_path << "\n";
  }
  return bad ? 3 : 0;
}

/// Human-readable causal report shared by `rioflow blame` and
/// `rioflow profile --blame`: critical path, blame tables, top stall
/// edges. Long paths elide their middle — --json has the full path.
void print_blame(const obs::causal::Analysis& an, const obs::Hub& hub,
                 std::size_t top_k, bool csv, std::ostream& out) {
  const bool ticks = hub.clock_unit() == obs::ClockUnit::kTicks;
  auto fmt = [ticks](std::uint64_t v) {
    return ticks ? std::to_string(v)
                 : support::format_duration_ns(static_cast<double>(v));
  };
  out << "critical path: " << fmt(an.crit_path) << " of " << fmt(an.makespan)
      << " makespan (" << an.path.size() << " nodes, body "
      << fmt(an.crit_body) << ", wait " << fmt(an.crit_wait) << ")"
      << (an.complete ? "" : "  [recorder dropped events: partial DAG]")
      << "\n";
  out << "wait attribution: " << fmt(an.wait_attributed) << " of "
      << fmt(an.wait_total) << " across " << an.edges.size() << " edges\n";

  if (!an.path.empty()) {
    support::Table pt({"path task", "worker", "body", "wait_in", "via data"});
    const std::size_t np = an.path.size();
    // Long chains would swamp the terminal: keep both ends, elide the rest.
    const std::size_t head = np <= 16 ? np : 8;
    const std::size_t tail = np <= 16 ? 0 : 8;
    const auto emit = [&](const obs::causal::PathNode& n) {
      auto row = pt.row();
      row.integer(static_cast<long long>(n.task));
      row.integer(static_cast<long long>(n.worker));
      row.str(fmt(n.body));
      row.str(n.wait_in == 0 ? "-" : fmt(n.wait_in));
      row.str(n.via_data == obs::kNoCauseData ? "-"
                                              : std::to_string(n.via_data));
    };
    for (std::size_t i = 0; i < head; ++i) emit(an.path[i]);
    if (tail != 0) {
      auto row = pt.row();
      row.str("... " + std::to_string(np - head - tail) + " nodes ...");
      for (int c = 0; c < 4; ++c) row.str("");
      for (std::size_t i = np - tail; i < np; ++i) emit(an.path[i]);
    }
    if (csv)
      pt.print_csv(out);
    else
      pt.print(out);
  }

  if (!an.task_blame.empty()) {
    support::Table tb({"blamed task", "stall caused", "edges"});
    for (std::size_t i = 0; i < std::min(top_k, an.task_blame.size()); ++i) {
      const obs::causal::TaskBlame& b = an.task_blame[i];
      auto row = tb.row();
      row.integer(static_cast<long long>(b.task));
      row.str(fmt(b.blame));
      row.integer(static_cast<long long>(b.edges));
    }
    if (csv)
      tb.print_csv(out);
    else
      tb.print(out);
  }
  if (!an.handle_blame.empty()) {
    support::Table hb({"blamed data", "stall caused", "edges"});
    for (std::size_t i = 0; i < std::min(top_k, an.handle_blame.size());
         ++i) {
      const obs::causal::HandleBlame& b = an.handle_blame[i];
      auto row = hb.row();
      row.integer(static_cast<long long>(b.data));
      row.str(fmt(b.blame));
      row.integer(static_cast<long long>(b.edges));
    }
    if (csv)
      hb.print_csv(out);
    else
      hb.print(out);
  }
  if (!an.edges.empty()) {
    support::Table et(
        {"stall edge", "producer", "data", "worker", "wait", "on path"});
    for (std::size_t i = 0; i < std::min(top_k, an.edges.size()); ++i) {
      const obs::causal::WaitEdge& e = an.edges[i];
      auto row = et.row();
      row.str(e.consumer == obs::kNoTask ? "-" : std::to_string(e.consumer));
      row.str(e.producer == obs::kNoTask ? "-" : std::to_string(e.producer));
      row.str(e.data == obs::kNoCauseData ? "-" : std::to_string(e.data));
      row.integer(static_cast<long long>(e.worker));
      row.str(fmt(e.wait));
      row.str(e.on_path ? "yes" : "");
    }
    if (csv)
      et.print_csv(out);
    else
      et.print(out);
  }
}

/// `rioflow profile`: execute once with the rio::obs telemetry hub attached
/// (docs/observability.md) and report per-worker phase totals, counter
/// totals and the e_p*e_r decomposition. --trace exports the flight
/// recorder as a Perfetto-loadable Chrome trace; --json writes the
/// versioned rio.obs.v1 metrics document; --blame appends the causal
/// analyzer's critical-path and blame report.
int run_profile(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;
  Options po = o;
  if (o.quick) {
    po.tasks = std::min<std::uint64_t>(po.tasks, 256);
    po.tiles = std::min<std::uint32_t>(po.tiles, 4);
    po.task_size = std::min<std::uint64_t>(po.task_size, 200);
  }
  const engine::Backend* backend =
      engine::Registry::instance().find_or_error(po.engine, error);
  if (backend == nullptr) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  workloads::Workload wl;
  if (!build_workload(po, body_for(*backend), wl, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  engine::Launch launch;
  if (!make_launch(po, wl, launch, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }

  // The recorder (per-worker event rings) is only paid for when a trace
  // will be exported or the causal analyzer needs the spans; counters and
  // phase totals are always on here. --sample thins the ring 1-in-N.
  obs::HubOptions ho;
  ho.recorder = !o.trace_path.empty() || o.blame;
  ho.sample = o.sample;
  obs::Hub hub(ho);

  const std::uint32_t workers = po.workers;
  launch.obs = &hub;
  support::RunStats stats;
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
  try {
    stats = (o.recover ? engine::run_supervised(*backend, image, launch)
                       : backend->run(image, launch))
                .stats;
  } catch (const engine::UnsupportedLaunch& e) {
    err << "rioflow: " << e.what() << "\n";
    return 2;
  }

  const bool ticks = hub.clock_unit() == obs::ClockUnit::kTicks;
  auto fmt = [ticks](std::uint64_t v) {
    return ticks ? std::to_string(v)
                 : support::format_duration_ns(static_cast<double>(v));
  };
  out << "-- profile: " << wl.name << " on " << po.engine << " (" << workers
      << " workers, clock=" << obs::to_string(hub.clock_unit()) << ") --\n";

  std::vector<std::string> header{"worker"};
  for (std::size_t p = 0; p < obs::kNumSpanPhases; ++p)
    header.push_back(obs::to_string(static_cast<obs::Phase>(p)));
  header.emplace_back("tasks");
  support::Table table(header);
  const obs::CounterSnapshot snap = hub.counter_snapshot();
  for (std::size_t w = 0; w < hub.num_workers(); ++w) {
    auto row = table.row();
    row.integer(static_cast<long long>(w));
    const auto& ph = hub.phase_totals(w);
    for (std::size_t p = 0; p < obs::kNumSpanPhases; ++p) row.str(fmt(ph[p]));
    row.integer(static_cast<long long>(
        snap.worker_value(w, obs::Counter::kTasksExecuted)));
  }
  if (o.csv)
    table.print_csv(out);
  else
    table.print(out);

  out << "counters:";
  for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
    const std::uint64_t v = snap.total(static_cast<obs::Counter>(c));
    if (v > 0)
      out << ' ' << obs::counter_name(static_cast<obs::Counter>(c)) << '='
          << v;
  }
  out << "\n";

  const auto e = metrics::decompose_synthetic(stats.cumulative());
  out << "e_p = " << e.e_p << ", e_r = " << e.e_r
      << ", e_p*e_r = " << e.e_p * e.e_r << "\n";
  if (hub.recorder_enabled())
    out << "recorder: " << hub.recorded() << " events retained, "
        << hub.dropped() << " dropped (sample 1-in-" << hub.sample_stride()
        << ")\n";
  if (o.blame)
    print_blame(obs::causal::analyze(hub), hub, o.top_edges, o.csv, out);

  if (!o.trace_path.empty()) {
    std::ofstream f(o.trace_path);
    if (!f) {
      err << "rioflow: cannot write " << o.trace_path << "\n";
      return 2;
    }
    obs::write_perfetto_trace(hub, f);
    out << "wrote " << o.trace_path << "\n";
  }
  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    obs::ObsJsonMeta meta;
    meta.engine = po.engine;
    meta.workload = wl.name;
    meta.e_p = e.e_p;
    meta.e_r = e.e_r;
    obs::write_obs_json(hub, stats, meta, f);
    out << "wrote " << o.json_path << "\n";
  }
  return 0;
}

/// `rioflow blame`: execute once with the flight recorder forced on, then
/// run the obs::causal analyzer — executed-DAG critical path, per-task and
/// per-handle blame, top stall edges (docs/observability.md). Any
/// supports_obs backend works; the virtual-time simulators give an exact
/// critical path. --recover supervises the run (evict-and-remap on worker
/// loss); --trace writes the Perfetto trace whose dep flow arrows mirror
/// the wait edges; --json writes the versioned rio.blame.v1 document.
int run_blame(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;
  Options po = o;
  if (o.quick) {
    po.tasks = std::min<std::uint64_t>(po.tasks, 256);
    po.tiles = std::min<std::uint32_t>(po.tiles, 4);
    po.task_size = std::min<std::uint64_t>(po.task_size, 200);
  }
  const engine::Backend* backend =
      engine::Registry::instance().find_or_error(po.engine, error);
  if (backend == nullptr) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  workloads::Workload wl;
  if (!build_workload(po, body_for(*backend), wl, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  engine::Launch launch;
  if (!make_launch(po, wl, launch, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }

  obs::HubOptions ho;
  ho.recorder = true;  // the analyzer IS the consumer: always record
  ho.sample = o.sample;
  obs::Hub hub(ho);
  launch.obs = &hub;

  support::RunStats stats;
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
  try {
    stats = (o.recover ? engine::run_supervised(*backend, image, launch)
                       : backend->run(image, launch))
                .stats;
  } catch (const engine::UnsupportedLaunch& e) {
    err << "rioflow: " << e.what() << "\n";
    return 2;
  }

  out << "-- blame: " << wl.name << " on " << po.engine << " (" << po.workers
      << " workers, clock=" << obs::to_string(hub.clock_unit())
      << ", sample 1-in-" << hub.sample_stride() << ") --\n";
  const obs::causal::Analysis an = obs::causal::analyze(hub);
  print_blame(an, hub, o.top_edges, o.csv, out);

  if (!o.trace_path.empty()) {
    std::ofstream f(o.trace_path);
    if (!f) {
      err << "rioflow: cannot write " << o.trace_path << "\n";
      return 2;
    }
    obs::write_perfetto_trace(hub, f);
    out << "wrote " << o.trace_path << "\n";
  }
  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    const auto e = metrics::decompose_synthetic(stats.cumulative());
    obs::ObsJsonMeta meta;
    meta.engine = po.engine;
    meta.workload = wl.name;
    meta.e_p = e.e_p;
    meta.e_r = e.e_r;
    obs::causal::write_blame_json(an, hub, meta, o.top_edges, f);
    out << "wrote " << o.json_path << "\n";
  }
  return 0;
}

/// Relative drift in percent; a fresh counter appearing from zero counts
/// as 100% so it can never hide below any threshold.
double pct_delta(double oldv, double newv) {
  if (oldv != 0.0) return (newv - oldv) / oldv * 100.0;
  return newv != 0.0 ? 100.0 : 0.0;
}

/// `rioflow obs-diff old.obs.json new.obs.json`: compare two rio.obs.v1
/// reports — wall time, per-phase totals, counters and the e_p*e_r
/// product. Exit 3 when the new run regressed beyond --threshold: wall
/// grew, a non-body (overhead/stall) phase grew, or the efficiency
/// product dropped. Counters are reported but never gate: their drift is
/// diagnosis, not verdict. --json writes the rio.obsdiff.v1 document.
int run_obs_diff(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.inputs.size() != 2) {
    err << "rioflow: obs-diff needs exactly two rio.obs.v1 files "
           "(old new)\n";
    return 1;
  }
  support::JsonValue docs[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream f(o.inputs[i]);
    if (!f) {
      err << "rioflow: cannot read " << o.inputs[i] << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string perr;
    if (!support::json_parse(ss.str(), docs[i], perr)) {
      err << "rioflow: " << o.inputs[i] << ": " << perr << "\n";
      return 1;
    }
    const support::JsonValue* schema = docs[i].find("schema");
    if (schema == nullptr || schema->str_or("") != "rio.obs.v1") {
      err << "rioflow: " << o.inputs[i]
          << " is not a rio.obs.v1 document\n";
      return 1;
    }
  }
  // Nested numeric lookup; absent members read as 0 (older reports).
  const auto section = [](const support::JsonValue& doc,
                          const char* a,
                          const char* b) -> const support::JsonValue* {
    const support::JsonValue* s = doc.find(a);
    return s == nullptr ? nullptr : s->find(b);
  };
  const auto num_in = [](const support::JsonValue* obj,
                         const char* key) -> double {
    if (obj == nullptr) return 0.0;
    const support::JsonValue* v = obj->find(key);
    return v == nullptr ? 0.0 : v->num_or(0.0);
  };

  struct Row {
    std::string name;
    double oldv = 0.0;
    double newv = 0.0;
    bool regressed = false;
  };
  std::vector<Row> phases;
  std::vector<Row> counters;
  const auto collect = [&](const char* key, std::vector<Row>& rows) {
    const support::JsonValue* po = section(docs[0], "totals", key);
    const support::JsonValue* pn = section(docs[1], "totals", key);
    if (po != nullptr)
      for (const auto& [name, v] : po->members)
        rows.push_back({name, v.num_or(0.0), num_in(pn, name.c_str()), false});
    if (pn != nullptr)
      for (const auto& [name, v] : pn->members) {
        bool seen = false;
        for (const Row& r : rows) seen = seen || r.name == name;
        if (!seen) rows.push_back({name, 0.0, v.num_or(0.0), false});
      }
  };
  collect("phases", phases);
  collect("counters", counters);

  const double wall_old = num_in(&docs[0], "wall_ns");
  const double wall_new = num_in(&docs[1], "wall_ns");
  const double prod_old =
      num_in(docs[0].find("decompose"), "product");
  const double prod_new =
      num_in(docs[1].find("decompose"), "product");

  // The regression gate: more wall time, more overhead/stall time, or a
  // worse efficiency product — each beyond the threshold, and only when
  // the old side actually measured something (a 0 -> x phase on a run
  // that previously recorded nothing is growth from noise, not signal).
  std::vector<std::string> regressions;
  if (wall_old > 0.0 && pct_delta(wall_old, wall_new) > o.threshold)
    regressions.push_back("wall_ns");
  for (Row& r : phases) {
    if (r.name == "body") continue;  // more body = more real work, not stall
    if (r.oldv > 0.0 && pct_delta(r.oldv, r.newv) > o.threshold) {
      r.regressed = true;
      regressions.push_back("phase " + r.name);
    }
  }
  if (prod_old > 0.0 && pct_delta(prod_old, prod_new) < -o.threshold)
    regressions.push_back("e_p*e_r product");

  out << "-- obs-diff: " << o.inputs[0] << " -> " << o.inputs[1]
      << " (threshold " << o.threshold << "%) --\n";
  const auto fmt_pct = [](double d) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.2f%%", d);
    return std::string(buf);
  };
  const auto fmt_num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  support::Table table({"metric", "old", "new", "drift", "gate"});
  const auto metric_row = [&](const std::string& name, double ov, double nv,
                              bool gated, bool bad) {
    auto row = table.row();
    row.str(name);
    row.str(fmt_num(ov));
    row.str(fmt_num(nv));
    row.str(fmt_pct(pct_delta(ov, nv)));
    row.str(bad ? "REGRESSED" : (gated ? "ok" : "info"));
  };
  metric_row("wall_ns", wall_old, wall_new, true,
             wall_old > 0.0 && pct_delta(wall_old, wall_new) > o.threshold);
  metric_row("e_p*e_r", prod_old, prod_new, true,
             prod_old > 0.0 &&
                 pct_delta(prod_old, prod_new) < -o.threshold);
  for (const Row& r : phases)
    metric_row("phase " + r.name, r.oldv, r.newv, r.name != "body",
               r.regressed);
  for (const Row& r : counters)
    if (r.oldv != 0.0 || r.newv != 0.0)
      metric_row(r.name, r.oldv, r.newv, false, false);
  if (o.csv)
    table.print_csv(out);
  else
    table.print(out);

  if (regressions.empty()) {
    out << "no regressions beyond " << o.threshold << "%\n";
  } else {
    out << "regressions (" << regressions.size() << "):";
    for (const std::string& r : regressions) out << ' ' << r;
    out << "\n";
  }

  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    using support::json_double;
    using support::json_quote;
    const auto metric_json = [&](const char* name, double ov, double nv) {
      f << "  " << json_quote(name) << ": {\"old\": " << json_double(ov)
        << ", \"new\": " << json_double(nv)
        << ", \"drift_pct\": " << json_double(pct_delta(ov, nv)) << "},\n";
    };
    f << "{\n  \"schema\": \"rio.obsdiff.v1\",\n"
      << "  \"old\": " << json_quote(o.inputs[0]) << ",\n"
      << "  \"new\": " << json_quote(o.inputs[1]) << ",\n"
      << "  \"threshold_pct\": " << json_double(o.threshold) << ",\n";
    metric_json("wall_ns", wall_old, wall_new);
    metric_json("product", prod_old, prod_new);
    const auto rows_json = [&](const char* key,
                               const std::vector<Row>& rows, bool gate) {
      f << "  " << json_quote(key) << ": [";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        f << (i == 0 ? "\n" : ",\n") << "    {\"name\": "
          << json_quote(r.name) << ", \"old\": " << json_double(r.oldv)
          << ", \"new\": " << json_double(r.newv) << ", \"drift_pct\": "
          << json_double(pct_delta(r.oldv, r.newv));
        if (gate)
          f << ", \"regressed\": " << (r.regressed ? "true" : "false");
        f << "}";
      }
      f << (rows.empty() ? "]" : "\n  ]");
    };
    rows_json("phases", phases, true);
    f << ",\n";
    rows_json("counters", counters, false);
    f << ",\n  \"regressions\": [";
    for (std::size_t i = 0; i < regressions.size(); ++i)
      f << (i == 0 ? "" : ", ") << json_quote(regressions[i]);
    f << "],\n  \"regressed\": "
      << (regressions.empty() ? "false" : "true") << "\n}\n";
    out << "wrote " << o.json_path << "\n";
  }
  return regressions.empty() ? 0 : 3;
}

/// `rioflow engines`: list the registered backends with their capability
/// flags. --json writes the versioned rio.engines.v1 document the
/// run_checks.sh smoke gate iterates over.
int run_engines(const Options& o, std::ostream& out, std::ostream& err) {
  const std::vector<const engine::Backend*> backends =
      engine::Registry::instance().all();

  out << "-- engines (" << backends.size() << " registered) --\n";
  support::Table table({"engine", "aliases", "capabilities", "description"});
  for (const engine::Backend* b : backends) {
    std::string caps;
    for (const auto& [flag, on] : engine::capability_list(b->caps())) {
      if (!on) continue;
      if (!caps.empty()) caps += ' ';
      caps += flag;
    }
    std::string aliases;
    for (const std::string& a :
         engine::Registry::instance().aliases_for(b->name())) {
      if (!aliases.empty()) aliases += ' ';
      aliases += a;
    }
    table.row()
        .str(std::string(b->name()))
        .str(aliases)
        .str(caps)
        .str(std::string(b->description()));
  }
  if (o.csv)
    table.print_csv(out);
  else
    table.print(out);

  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    f << "{\n  \"schema\": \"rio.engines.v1\",\n  \"engines\": [";
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const engine::Backend* b = backends[i];
      f << (i == 0 ? "\n" : ",\n") << "    {\"name\": "
        << support::json_quote(std::string(b->name())) << ", \"aliases\": [";
      bool first_alias = true;
      for (const std::string& a :
           engine::Registry::instance().aliases_for(b->name())) {
        f << (first_alias ? "" : ", ") << support::json_quote(a);
        first_alias = false;
      }
      f << "], \"description\": "
        << support::json_quote(std::string(b->description()))
        << ", \"capabilities\": {";
      bool first = true;
      for (const auto& [flag, on] : engine::capability_list(b->caps())) {
        f << (first ? "" : ", ") << '"' << flag
          << "\": " << (on ? "true" : "false");
        first = false;
      }
      f << "}}";
    }
    f << (backends.empty() ? "]" : "\n  ]") << "\n}\n";
    out << "wrote " << o.json_path << "\n";
  }
  return 0;
}

/// `rioflow verify`: model-check the engine's REAL synchronization code on
/// a small flow (mc::impl). Explores every interleaving of the protocol's
/// shared-word operations (DPOR-reduced unless --naive) and checks STFSpec
/// refinement, the in-order window invariants, deadlock freedom and — under
/// --policy block — lost-wakeup freedom. Violations come with a replayable
/// schedule witness.
int run_verify(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;

  mc::impl::Options mo;
  if (o.engine == "rio") mo.engine = mc::impl::EngineKind::kRio;
  else if (o.engine == "rio-pruned") mo.engine = mc::impl::EngineKind::kRioPruned;
  else if (o.engine == "coor") mo.engine = mc::impl::EngineKind::kCoor;
  else {
    err << "rioflow: verify supports engines rio|rio-pruned|coor, not '"
        << o.engine << "'\n";
    return 1;
  }

  // The state space is exponential in flow size; default to a flow the
  // checker can exhaust instead of the execution-sized defaults.
  Options wo = o;
  if (!wo.workload_given) wo.workload = "chain";
  if (o.quick) {
    wo.tasks = std::min<std::uint64_t>(wo.tasks, 6);
    wo.tiles = std::min<std::uint32_t>(wo.tiles, 2);
    wo.width = std::min<std::uint32_t>(wo.width, 3);
    wo.steps = std::min<std::uint32_t>(wo.steps, 2);
    wo.workers = std::min<std::uint32_t>(wo.workers, 2);
    mo.max_interleavings = 2'000;
  } else if (wo.workload == "chain" || wo.workload == "independent" ||
             wo.workload == "random") {
    // Synthetic workloads keep their execution-sized default (4096); snap
    // it to the checker's ceiling rather than rejecting the default.
    wo.tasks = std::min<std::uint64_t>(wo.tasks, 16);
  }
  workloads::Workload wl;
  if (!build_workload(wo, workloads::BodyKind::kNone, wl, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  if (wl.flow.num_tasks() > 64) {
    err << "rioflow: verify explores interleavings exhaustively and handles "
           "at most 64 tasks ("
        << wl.flow.num_tasks()
        << " generated; shrink with --tasks/--tiles or --quick)\n";
    return 1;
  }
  if (wo.workers > 4) {
    err << "rioflow: verify handles at most 4 workers\n";
    return 1;
  }
  for (const stf::Task& t : wl.flow.tasks())
    for (const stf::Access& a : t.accesses)
      if (stf::is_reduction(a.mode)) {
        err << "rioflow: verify does not support reduction accesses (task "
            << t.id << ")\n";
        return 1;
      }

  rt::Mapping mapping;
  if (!pick_mapping(wo, wl, mapping, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  support::WaitPolicy policy{};
  if (!pick_policy(wo, policy, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  coor::QueueKind queue{};
  if (!pick_queue(wo, queue, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  if (queue != coor::QueueKind::kLocked && o.engine != "coor") {
    err << "rioflow: --queue applies to the coor engine only\n";
    return 1;
  }
  mo.workers = wo.workers;
  mo.policy = policy;
  mo.queue = queue;
  mo.dpor = !o.naive;
  mo.max_preemptions = o.max_preemptions;
  if (o.recover) {
    if (wo.workers < 2) {
      err << "rioflow: verify --recover needs --workers >= 2 (one worker "
             "dies and is evicted)\n";
      return 1;
    }
    if (wl.flow.num_tasks() == 0) {
      err << "rioflow: verify --recover needs a non-empty flow\n";
      return 1;
    }
    // Mid-flow crash: deepest frontier variety for the phase-1 sweep.
    mo.recover = true;
    mo.crash_task = wl.flow.num_tasks() / 2;
  }

  const mc::impl::Result r = mc::impl::verify(wl.flow, mapping, mo);

  out << "-- verify: " << wl.name << " on " << o.engine << " ("
      << mo.workers << " workers, " << o.policy << " policy, "
      << (mo.engine == mc::impl::EngineKind::kCoor
              ? std::string(coor::to_string(mo.queue)) + " queue, "
              : std::string())
      << (mo.dpor ? "dpor" : "naive");
  if (mo.max_preemptions >= 0)
    out << ", <=" << mo.max_preemptions << " preemptions";
  out << ") --\n";
  if (mo.recover)
    out << "recovery: worker executing task " << mo.crash_task
        << " dies after its body; phase 1 explores the loss ("
        << r.frontiers << " completion frontiers), phase 2 the resumed "
        << (mo.workers - 1) << "-worker evicted configuration\n";
  out << "interleavings: " << r.explored << " explored, " << r.pruned
      << " pruned, " << r.steps << " scheduling steps, "
      << support::format_duration_ns(r.seconds * 1e9) << "\n";
  if (r.truncated)
    out << "NOTE: exploration truncated (budget reached); the verdict "
           "covers only the explored prefix\n";
  out << "refines-stf:      " << (r.refines_stf ? "ok" : "VIOLATED") << "\n";
  out << "in-order windows: " << (r.in_order ? "ok" : "VIOLATED") << "\n";
  out << "deadlock-free:    " << (r.deadlock_free ? "ok" : "VIOLATED") << "\n";
  out << "lost-wakeup-free: " << (r.lost_wakeup_free ? "ok" : "VIOLATED")
      << "\n";
  if (!r.ok()) {
    out << "violation [" << r.violation_kind << "]: " << r.violation << "\n";
    out << "witness schedule (" << r.witness.size() << " steps):";
    for (std::uint32_t w : r.witness) out << ' ' << w;
    out << "\n";
    if (mo.engine == mc::impl::EngineKind::kCoor)
      out << "(worker " << mo.workers << " is the master)\n";
  }

  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    f << "{\n  \"schema\": \"rio.verify.v1\",\n"
      << "  \"engine\": " << support::json_quote(o.engine) << ",\n"
      << "  \"workload\": " << support::json_quote(wl.name) << ",\n"
      << "  \"workers\": " << mo.workers << ",\n"
      << "  \"policy\": " << support::json_quote(o.policy) << ",\n"
      << "  \"queue\": " << support::json_quote(coor::to_string(mo.queue))
      << ",\n"
      << "  \"dpor\": " << (mo.dpor ? "true" : "false") << ",\n"
      << "  \"max_preemptions\": " << mo.max_preemptions << ",\n"
      << "  \"recover\": " << (mo.recover ? "true" : "false") << ",\n"
      << "  \"crash_task\": " << (mo.recover
                                      ? std::to_string(mo.crash_task)
                                      : std::string("null")) << ",\n"
      << "  \"frontiers\": " << r.frontiers << ",\n"
      << "  \"explored\": " << r.explored << ",\n"
      << "  \"pruned\": " << r.pruned << ",\n"
      << "  \"steps\": " << r.steps << ",\n"
      << "  \"truncated\": " << (r.truncated ? "true" : "false") << ",\n"
      << "  \"seconds\": " << r.seconds << ",\n"
      << "  \"ok\": " << (r.ok() ? "true" : "false") << ",\n"
      << "  \"properties\": {\"refines_stf\": "
      << (r.refines_stf ? "true" : "false") << ", \"in_order\": "
      << (r.in_order ? "true" : "false") << ", \"deadlock_free\": "
      << (r.deadlock_free ? "true" : "false") << ", \"lost_wakeup_free\": "
      << (r.lost_wakeup_free ? "true" : "false") << "},\n";
    if (r.ok()) {
      f << "  \"violation\": null\n";
    } else {
      f << "  \"violation\": {\"kind\": "
        << support::json_quote(r.violation_kind) << ", \"message\": "
        << support::json_quote(r.violation) << ", \"witness\": [";
      for (std::size_t i = 0; i < r.witness.size(); ++i)
        f << (i == 0 ? "" : ", ") << r.witness[i];
      f << "]}\n";
    }
    f << "}\n";
    out << "wrote " << o.json_path << "\n";
  }
  return r.ok() ? 0 : 3;
}

/// optimize: run the flowpass pipeline over the compiled image, verify the
/// rewrite byte-for-byte against the sequential oracle, and compare
/// optimized vs unoptimized execution on the selected backend.
///
/// Fold bodies mix data bytes non-idempotently, so every measured run needs
/// a fresh flow (data restarts at zero) — the repeat loops rebuild workload
/// + pipeline per repetition and only time the engine run itself.
int run_optimize(const Options& o, std::ostream& out, std::ostream& err) {
  std::string error;
  const engine::Backend* backend =
      engine::Registry::instance().find_or_error(o.engine, error);
  if (backend == nullptr) {
    err << "rioflow: " << error << "\n";
    return 1;
  }

  const std::vector<std::string> pass_names =
      o.passes.empty() ? flowpass::Registry::instance().names()
                       : split_csv(o.passes);
  if (pass_names.empty()) {
    err << "rioflow: --passes is empty (choices: "
        << flowpass::Registry::instance().names_csv() << ")\n";
    return 1;
  }

  flowpass::PassOptions popts;
  popts.workers = o.workers;
  popts.fuse_threshold = o.fuse_threshold;
  popts.tune = o.tune;

  const bool bodies = backend->caps().executes_bodies;
  const workloads::BodyKind body =
      bodies ? workloads::BodyKind::kFold : workloads::BodyKind::kNone;
  const int repeats = std::max(1, o.repeat);

  // Sequential oracle over the SOURCE flow: any semantics-preserving
  // rewrite must reproduce exactly these bytes on a real backend.
  std::vector<std::vector<std::byte>> oracle;
  if (bodies) {
    workloads::Workload wl;
    if (!build_workload(o, workloads::BodyKind::kFold, wl, error)) {
      err << "rioflow: " << error << "\n";
      return 1;
    }
    stf::SequentialExecutor{}.run(wl.flow);
    oracle = data_image(wl.flow.registry());
  }

  std::vector<flowpass::PassReport> reports;
  std::string workload_name;
  double pipeline_s = 0.0;
  std::size_t source_tasks = 0, optimized_tasks = 0;
  bool opt_match = true, unopt_match = true;
  bool virtual_time = false;
  std::uint64_t opt_makespan = 0, unopt_makespan = 0;  // wall ns or ticks

  // ---- optimized executions ----------------------------------------------
  {
    double best_s = 1e300;
    for (int rep = 0; rep < repeats; ++rep) {
      workloads::Workload wl;
      if (!build_workload(o, body, wl, error)) {
        err << "rioflow: " << error << "\n";
        return 1;
      }
      engine::Launch launch;
      if (!make_launch(o, wl, launch, error)) {
        err << "rioflow: " << error << "\n";
        return 1;
      }
      const stf::FlowImage source = stf::FlowImage::compile(wl.flow);
      support::Stopwatch psw;
      flowpass::PipelineResult pipe =
          flowpass::run_pipeline(source, pass_names, popts);
      if (!pipe.ok()) {
        err << "rioflow: " << pipe.error << "\n";
        return 1;
      }
      if (rep == 0) {
        pipeline_s = psw.elapsed_s();
        reports = pipe.passes;
        workload_name = wl.name;
        source_tasks = source.size();
        optimized_tasks = pipe.image.size();
      }
      // A placement pass's product beats the CLI default: this is how
      // `--tune`'s winner reaches the real engine. Non-mapping backends
      // ignore Launch::mapping, so overriding it is always safe.
      if (pipe.mapping.valid()) launch.mapping = pipe.mapping;
      engine::Outcome outcome;
      support::Stopwatch sw;
      try {
        outcome = backend->run(pipe.image, launch);
      } catch (const engine::UnsupportedLaunch& e) {
        err << "rioflow: " << e.what() << "\n";
        return 2;
      }
      best_s = std::min(best_s, sw.elapsed_s());
      virtual_time = outcome.virtual_time;
      if (outcome.virtual_time) opt_makespan = outcome.makespan;
      if (bodies && data_image(wl.flow.registry()) != oracle)
        opt_match = false;
    }
    if (!virtual_time)
      opt_makespan = static_cast<std::uint64_t>(best_s * 1e9);
  }

  // ---- unoptimized baseline, same backend + knobs ------------------------
  {
    double best_s = 1e300;
    for (int rep = 0; rep < repeats; ++rep) {
      workloads::Workload wl;
      if (!build_workload(o, body, wl, error)) {
        err << "rioflow: " << error << "\n";
        return 1;
      }
      engine::Launch launch;
      if (!make_launch(o, wl, launch, error)) {
        err << "rioflow: " << error << "\n";
        return 1;
      }
      const stf::FlowImage image = stf::FlowImage::compile(wl.flow);
      engine::Outcome outcome;
      support::Stopwatch sw;
      try {
        outcome = backend->run(image, launch);
      } catch (const engine::UnsupportedLaunch& e) {
        err << "rioflow: " << e.what() << "\n";
        return 2;
      }
      best_s = std::min(best_s, sw.elapsed_s());
      if (outcome.virtual_time) unopt_makespan = outcome.makespan;
      if (bodies && data_image(wl.flow.registry()) != oracle)
        unopt_match = false;
    }
    if (!virtual_time)
      unopt_makespan = static_cast<std::uint64_t>(best_s * 1e9);
  }

  // ---- report -------------------------------------------------------------
  out << "-- optimize: " << workload_name << " on " << backend->name() << " ("
      << o.workers << " workers, passes ";
  for (std::size_t i = 0; i < pass_names.size(); ++i)
    out << (i == 0 ? "" : ",") << pass_names[i];
  out << (o.tune ? ", tuned" : "") << ") --\n";

  if (o.report) {
    const auto arrow = [](std::uint64_t a, std::uint64_t b) {
      return std::to_string(a) + " -> " + std::to_string(b);
    };
    support::Table table(
        {"pass", "tasks", "edges", "critical path", "balance", "detail"});
    for (const flowpass::PassReport& r : reports) {
      char bal[64];
      std::snprintf(bal, sizeof bal, "%.2f -> %.2f", r.balance_before,
                    r.balance_after);
      table.row()
          .str(r.pass)
          .str(arrow(r.tasks_before, r.tasks_after))
          .str(arrow(r.edges_before, r.edges_after))
          .str(arrow(r.critical_path_before, r.critical_path_after))
          .str(bal)
          .str(r.detail);
    }
    if (o.csv)
      table.print_csv(out);
    else
      table.print(out);
    for (const flowpass::PassReport& r : reports)
      for (const flowpass::TuneStep& t : r.tuning)
        out << "tune[" << r.pass << "]: " << t.candidate << " -> " << t.score
            << (t.chosen ? "  (chosen)" : "") << "\n";
  }

  if (bodies)
    out << "verification: optimized " << (opt_match ? "ok" : "ORACLE MISMATCH")
        << ", unoptimized " << (unopt_match ? "ok" : "ORACLE MISMATCH")
        << " (vs sequential oracle, " << oracle.size() << " data objects)\n";
  else
    out << "verification: skipped (" << backend->name()
        << " is a virtual-time engine; bodies never execute)\n";

  const auto fmt_span = [&](std::uint64_t v) {
    return virtual_time
               ? std::to_string(v) + " ticks (virtual)"
               : support::format_duration_ns(static_cast<double>(v));
  };
  out << "tasks: " << source_tasks << " -> " << optimized_tasks
      << "  unoptimized: " << fmt_span(unopt_makespan)
      << "  optimized: " << fmt_span(opt_makespan);
  if (opt_makespan > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx",
                  static_cast<double>(unopt_makespan) /
                      static_cast<double>(opt_makespan));
    out << "  speedup: " << buf;
  }
  out << "\n";

  if (!o.json_path.empty()) {
    std::ofstream f(o.json_path);
    if (!f) {
      err << "rioflow: cannot write " << o.json_path << "\n";
      return 2;
    }
    f << "{\n  \"schema\": \"rio.optimize.v1\",\n"
      << "  \"workload\": " << support::json_quote(workload_name) << ",\n"
      << "  \"engine\": " << support::json_quote(backend->name()) << ",\n"
      << "  \"workers\": " << o.workers << ",\n"
      << "  \"tune\": " << (o.tune ? "true" : "false") << ",\n"
      << "  \"fuse_threshold\": " << o.fuse_threshold << ",\n"
      << "  \"passes\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const flowpass::PassReport& r = reports[i];
      f << (i == 0 ? "" : ",") << "\n    {\"name\": "
        << support::json_quote(r.pass)
        << ", \"tasks_before\": " << r.tasks_before
        << ", \"tasks_after\": " << r.tasks_after
        << ", \"edges_before\": " << r.edges_before
        << ", \"edges_after\": " << r.edges_after
        << ", \"critical_path_before\": " << r.critical_path_before
        << ", \"critical_path_after\": " << r.critical_path_after
        << ", \"balance_before\": " << support::json_double(r.balance_before)
        << ", \"balance_after\": " << support::json_double(r.balance_after)
        << ", \"detail\": " << support::json_quote(r.detail)
        << ", \"tuning\": [";
      for (std::size_t t = 0; t < r.tuning.size(); ++t)
        f << (t == 0 ? "" : ", ") << "{\"candidate\": "
          << support::json_quote(r.tuning[t].candidate)
          << ", \"score\": " << r.tuning[t].score << ", \"chosen\": "
          << (r.tuning[t].chosen ? "true" : "false") << "}";
      f << "]}";
    }
    f << "\n  ],\n"
      << "  \"tasks_before\": " << source_tasks << ",\n"
      << "  \"tasks_after\": " << optimized_tasks << ",\n"
      << "  \"verification\": {\"checked\": " << (bodies ? "true" : "false")
      << ", \"optimized_matches_oracle\": "
      << (bodies ? (opt_match ? "true" : "false") : "null")
      << ", \"unoptimized_matches_oracle\": "
      << (bodies ? (unopt_match ? "true" : "false") : "null") << "},\n"
      << "  \"virtual_time\": " << (virtual_time ? "true" : "false") << ",\n"
      << "  \"unoptimized_makespan\": " << unopt_makespan << ",\n"
      << "  \"optimized_makespan\": " << opt_makespan << ",\n"
      << "  \"pipeline_seconds\": " << support::json_double(pipeline_s)
      << "\n}\n";
    out << "wrote " << o.json_path << "\n";
  }
  return (opt_match && unopt_match) ? 0 : 3;
}

}  // namespace

std::string usage() {
  // The engine list is derived from the registry so it can never drift
  // from the code; `rioflow engines` prints the capability matrix.
  const std::string engines =
      engine::Registry::instance().names_csv(" | ");
  return R"(rioflow — run STF workloads on the RIO execution models

usage: rioflow [command] [options]
  commands:
    (none)        generate the workload and execute it on --engine
    lint          static flow analysis only — nothing executes (RF/RM/RP
                  finding codes; see docs/analysis.md)
    check         execute a supports_sync engine recording sync events, then
                  run the happens-before race checker (RC codes)
    chaos         sweep a deterministic fault plan (kinds x seeds x rates x
                  engines) with retry+rollback and the progress watchdog
                  enabled, verifying survivors against the sequential
                  oracle; --faults crash kills workers permanently and
                  recovers by evict-and-remap (engine::run_supervised)
    profile       execute once with the rio::obs telemetry hub attached and
                  report per-worker phase totals, counters and the e_p*e_r
                  decomposition (any supports_obs engine; --trace writes a
                  Perfetto trace, --json the rio.obs.v1 document, --quick
                  shrinks, --blame appends the causal report)
    blame         execute once with the flight recorder on and run the
                  causal analyzer: every acquire_wait span carries what it
                  waited on, so the rings stitch into the *executed* DAG —
                  prints the weighted critical path, per-task / per-handle
                  blame and the top stall edges (--top K; --json writes the
                  rio.blame.v1 document; --trace a Perfetto trace whose dep
                  flow arrows mirror the wait edges; --sample N thins the
                  recorder; simulators give an exact critical path)
    obs-diff      compare two rio.obs.v1 reports (obs-diff old.json
                  new.json): per-phase / per-counter drift and the e_p*e_r
                  product; exit 3 when an overhead phase or wall time grew
                  (or the product dropped) beyond --threshold pct (--json
                  writes the rio.obsdiff.v1 document)
    engines       list registered backends with their capability flags
                  (--json writes the rio.engines.v1 document)
    verify        model-check the REAL protocol code of rio|rio-pruned|coor
                  on a small flow: explore every interleaving of its
                  shared-word operations (DPOR) and check STF refinement,
                  in-order windows, deadlock and lost-wakeup freedom
                  (--json writes the rio.verify.v1 document; violations
                  come with a replayable schedule witness)
    optimize      run the flowpass pipeline (fuse | reorder | partition |
                  map; docs/passes.md) over the compiled image, byte-verify
                  the rewrite against the sequential oracle, then execute
                  optimized vs unoptimized on --engine and compare
                  (--passes selects, --tune scores mappings by simulated
                  makespan, --report prints per-pass metrics, --json writes
                  the rio.optimize.v1 document)

  --workload W    independent | random | chain | gemm | lu | cholesky |
                  stencil |
                  taskbench:<trivial|no_comm|stencil_1d|stencil_1d_periodic|
                             fft|tree|all_to_all|spread> |
                  lintfix:<uninit-read|dead-write|unused-handle|
                           redundant-edge|race|phase-mapping|
                           empty-phase|cross-phase-dep|tiny-tasks>
                                                                [independent]
  --engine E      )" +
         engines + R"(
                  (aliases: pruned, sim; default from RIOFLOW_ENGINE)  [rio]
  --workers N     worker threads / virtual cores                [2])" +
         R"(
  --tasks N       synthetic workloads: task count               [4096]
  --tiles N       tiled workloads: grid dimension               [8]
  --width N       taskbench/stencil width                       [24]
  --steps N       taskbench/stencil steps                       [32]
  --task-size N   counter iterations / virtual instructions     [1000]
  --mapping M     rr | block | owner                            [owner]
  --policy P      spin | yield | block (RIO wait policy)        [yield]
  --scheduler S   fifo | lifo | locality | priority (coor)      [fifo]
  --queue Q       locked | ring (coor central ready queue;
                  ring = wait-free MPMC, fifo/lifo only)        [locked]
  --repeat N      repetitions (best time reported)              [1]
  --seed N        workload seed                                 [42]
  --counter-bits N  lint: protocol counter width for RP2xx       [64]
  --fail-on S     lint/check: exit 3 at error|warning|info       [warning]
  --fault-rate R  chaos: P(injected fault) per (task, attempt)   [0.05]
  --faults K      chaos: fault kinds to sweep — transient | stall |
                  crash (permanent worker death; the run recovers
                  by evict-and-remap + resume) | all        [transient]
  --fault-seeds N chaos: fault-plan seeds per (engine, rate)     [3]
  --retries N     chaos: retry budget (max attempts per task)    [3]
  --retry-tasks S per-task retry overrides "id=N,id=N"           []
  --watchdog-ms N chaos: progress watchdog window, 0 disables    [2000]
  --engines CSV   chaos: executes_bodies engines to sweep
                  (see `rioflow engines`)      [rio,rio-pruned,coor,hybrid]
  --recover       run: supervise the execution — checkpoint the
                  completion frontier and, on worker loss, evict,
                  remap and resume (supports_recovery engines)
                  verify: model the recovery protocol — phase 1
                  explores a mid-flow worker death, phase 2 the
                  resumed evicted configuration
  --max-preemptions N  verify: bound scheduler preemptions     [unbounded]
  --naive         verify: disable DPOR (full naive enumeration)
  --passes CSV    optimize: passes to apply, in order           [all]
  --tune          optimize: score map candidates by sim-rio makespan
  --report        optimize: print the per-pass report table
  --fuse-threshold N  fuse/lint RF501: tiny-task cost cutoff    [1000]
  --blame         profile: also run the causal analyzer
  --sample N      profile/blame: record every Nth span          [1]
  --top K         blame: stall edges printed / kept in --json   [10]
  --threshold P   obs-diff: regression threshold in percent     [5]
  --quick         chaos/profile/blame/verify: shrunk run for CI gates
  --summary       print flow structure summary
  --decompose     print e_p/e_r efficiency decomposition
  --dot FILE      write the dependency DAG as Graphviz DOT
  --trace FILE    write a Chrome trace (real engines; profile: obs trace)
  --json FILE     machine-readable report (profile: rio.obs.v1, blame:
                  rio.blame.v1, obs-diff: rio.obsdiff.v1, chaos:
                  rio.chaos.v2, lint: rio.lint.v1, check: rio.check.v1,
                  optimize: rio.optimize.v1)
  --csv           machine-readable outputs
  --help
)";
}

bool parse(int argc, const char* const* argv, Options& o,
           std::string& error) {
  int first = 1;
  if (argc > 1 && argv[1][0] != '-') {
    const std::string cmd = argv[1];
    if (cmd != "lint" && cmd != "check" && cmd != "chaos" &&
        cmd != "profile" && cmd != "blame" && cmd != "obs-diff" &&
        cmd != "engines" && cmd != "verify" && cmd != "optimize") {
      error = "unknown command '" + cmd +
              "' (lint|check|chaos|profile|blame|obs-diff|engines|verify|"
              "optimize)";
      return false;
    }
    o.command = cmd;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(name) + " needs a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      o.help = true;
      return true;
    } else if (arg == "--summary") {
      o.summary = true;
    } else if (arg == "--decompose") {
      o.decompose = true;
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (arg == "--quick") {
      o.quick = true;
    } else if (arg == "--blame") {
      o.blame = true;
    } else if (arg == "--sample") {
      const char* v = need_value("--sample");
      if (!v) return false;
      if (!to_u64(std::string(v), o.sample) || o.sample == 0) {
        error = std::string("--sample needs an integer >= 1, got '") + v +
                "'";
        return false;
      }
    } else if (arg == "--top") {
      const char* v = need_value("--top");
      if (!v) return false;
      std::uint32_t n = 0;
      if (!to_u32(std::string(v), n)) {
        error = std::string("bad numeric value for --top: '") + v + "'";
        return false;
      }
      o.top_edges = n;
    } else if (arg == "--threshold") {
      const char* v = need_value("--threshold");
      if (!v) return false;
      char* end = nullptr;
      o.threshold = std::strtod(v, &end);
      if (end == v || *end != '\0' || o.threshold < 0.0) {
        error = std::string("bad value for --threshold: '") + v + "'";
        return false;
      }
    } else if (arg == "--recover") {
      o.recover = true;
    } else if (arg == "--naive") {
      o.naive = true;
    } else if (arg == "--max-preemptions") {
      const char* v = need_value("--max-preemptions");
      if (!v) return false;
      std::uint32_t n = 0;
      if (!to_u32(std::string(v), n)) {
        error = std::string("bad numeric value for --max-preemptions: '") +
                v + "'";
        return false;
      }
      o.max_preemptions = static_cast<int>(n);
    } else if (arg == "--workload") {
      const char* v = need_value("--workload");
      if (!v) return false;
      o.workload = v;
      o.workload_given = true;
    } else if (arg == "--fault-rate") {
      const char* v = need_value("--fault-rate");
      if (!v) return false;
      char* end = nullptr;
      o.fault_rate = std::strtod(v, &end);
      if (end == v || *end != '\0') {
        error = std::string("bad numeric value for --fault-rate: '") + v + "'";
        return false;
      }
    } else if (arg == "--engines") {
      const char* v = need_value("--engines");
      if (!v) return false;
      o.engines = v;
    } else if (arg == "--faults") {
      const char* v = need_value("--faults");
      if (!v) return false;
      o.faults = v;
    } else if (arg == "--retry-tasks") {
      const char* v = need_value("--retry-tasks");
      if (!v) return false;
      o.retry_tasks = v;
    } else if (arg == "--engine") {
      const char* v = need_value("--engine");
      if (!v) return false;
      o.engine = v;
      o.engine_given = true;
    } else if (arg == "--passes") {
      const char* v = need_value("--passes");
      if (!v) return false;
      o.passes = v;
    } else if (arg == "--tune") {
      o.tune = true;
    } else if (arg == "--report") {
      o.report = true;
    } else if (arg == "--fuse-threshold") {
      const char* v = need_value("--fuse-threshold");
      if (!v) return false;
      if (!to_u64(std::string(v), o.fuse_threshold)) {
        error = std::string("bad numeric value for --fuse-threshold: '") + v +
                "'";
        return false;
      }
    } else if (arg == "--mapping") {
      const char* v = need_value("--mapping");
      if (!v) return false;
      o.mapping = v;
    } else if (arg == "--policy") {
      const char* v = need_value("--policy");
      if (!v) return false;
      o.policy = v;
    } else if (arg == "--scheduler") {
      const char* v = need_value("--scheduler");
      if (!v) return false;
      o.scheduler = v;
    } else if (arg == "--queue") {
      const char* v = need_value("--queue");
      if (!v) return false;
      o.queue = v;
    } else if (arg == "--dot") {
      const char* v = need_value("--dot");
      if (!v) return false;
      o.dot_path = v;
    } else if (arg == "--trace") {
      const char* v = need_value("--trace");
      if (!v) return false;
      o.trace_path = v;
    } else if (arg == "--json") {
      const char* v = need_value("--json");
      if (!v) return false;
      o.json_path = v;
    } else if (arg == "--fail-on") {
      const char* v = need_value("--fail-on");
      if (!v) return false;
      o.fail_on = v;
    } else if (arg == "--workers" || arg == "--tasks" || arg == "--tiles" ||
               arg == "--width" || arg == "--steps" || arg == "--task-size" ||
               arg == "--repeat" || arg == "--seed" ||
               arg == "--counter-bits" || arg == "--fault-seeds" ||
               arg == "--retries" || arg == "--watchdog-ms") {
      const char* v = need_value(arg.c_str());
      if (!v) return false;
      const std::string value = v;
      bool ok = true;
      if (arg == "--workers") ok = to_u32(value, o.workers);
      else if (arg == "--tasks") ok = to_u64(value, o.tasks);
      else if (arg == "--tiles") ok = to_u32(value, o.tiles);
      else if (arg == "--width") ok = to_u32(value, o.width);
      else if (arg == "--steps") ok = to_u32(value, o.steps);
      else if (arg == "--task-size") ok = to_u64(value, o.task_size);
      else if (arg == "--seed") ok = to_u64(value, o.seed);
      else if (arg == "--counter-bits")
        ok = to_u32(value, o.counter_bits) && o.counter_bits > 0;
      else if (arg == "--fault-seeds")
        ok = to_u32(value, o.fault_seeds) && o.fault_seeds > 0;
      else if (arg == "--retries")
        ok = to_u32(value, o.retries) && o.retries > 0;
      else if (arg == "--watchdog-ms")
        ok = to_u64(value, o.watchdog_ms);
      else {
        std::uint32_t r = 0;
        ok = to_u32(value, r);
        o.repeat = static_cast<int>(r);
      }
      if (!ok) {
        error = "bad numeric value for " + arg + ": '" + value + "'";
        return false;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      if (o.command != "obs-diff") {
        error = "unexpected operand '" + arg +
                "' (only obs-diff takes positional files)";
        return false;
      }
      o.inputs.push_back(arg);
    } else {
      error = "unknown option '" + arg + "'";
      return false;
    }
  }
  if (o.workers == 0) {
    error = "--workers must be >= 1";
    return false;
  }
  if (o.repeat < 1) {
    error = "--repeat must be >= 1";
    return false;
  }
  // Default-engine config: RIOFLOW_ENGINE fills in when --engine was not
  // given. Resolution (and the unknown-name error with its choices list)
  // happens later in the registry, like any other engine name or alias.
  if (!o.engine_given) {
    if (const char* env = std::getenv("RIOFLOW_ENGINE"); env && *env) {
      o.engine = env;
    }
  }
  return true;
}

int run(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.help) {
    out << usage();
    return 0;
  }
  if (o.command == "lint") return run_lint(o, out, err);
  if (o.command == "check") return run_check(o, out, err);
  if (o.command == "chaos") return run_chaos(o, out, err);
  if (o.command == "profile") return run_profile(o, out, err);
  if (o.command == "blame") return run_blame(o, out, err);
  if (o.command == "obs-diff") return run_obs_diff(o, out, err);
  if (o.command == "engines") return run_engines(o, out, err);
  if (o.command == "verify") return run_verify(o, out, err);
  if (o.command == "optimize") return run_optimize(o, out, err);
  std::string error;
  const engine::Backend* backend =
      engine::Registry::instance().find_or_error(o.engine, error);
  if (backend == nullptr) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  workloads::Workload wl;
  if (!build_workload(o, body_for(*backend), wl, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }

  stf::DependencyGraph graph(wl.flow);
  if (o.summary) {
    out << "-- flow: " << wl.name << " --\n";
    stf::print_summary(stf::summarize_flow(wl.flow, graph), out);
  }
  if (!o.dot_path.empty()) {
    std::ofstream f(o.dot_path);
    if (!f) {
      err << "rioflow: cannot write " << o.dot_path << "\n";
      return 2;
    }
    stf::export_dot(wl.flow, graph, f, wl.owners);
    out << "wrote " << o.dot_path << "\n";
  }

  engine::Launch launch;
  if (!make_launch(o, wl, launch, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  if (!o.retry_tasks.empty() &&
      !parse_retry_tasks(o.retry_tasks, launch.retry, error)) {
    err << "rioflow: " << error << "\n";
    return 1;
  }
  const bool want_trace = !o.trace_path.empty();
  launch.collect_trace = want_trace;

  // A priority scheduler needs priorities: derive them from the dependency
  // graph's bottom levels for any backend that honours a scheduler. Must
  // happen before the image is compiled (the image snapshots priorities).
  if (backend->caps().uses_scheduler &&
      launch.scheduler == coor::SchedulerKind::kPriority) {
    const auto levels = graph.bottom_levels(wl.flow);
    for (stf::TaskId t = 0; t < wl.flow.num_tasks(); ++t)
      wl.flow.set_priority(t, static_cast<std::int32_t>(levels[t]));
  }
  const stf::FlowImage image = stf::FlowImage::compile(wl.flow);

  double best_s = 1e300;
  engine::Outcome outcome;
  for (int rep = 0; rep < o.repeat; ++rep) {
    support::Stopwatch sw;
    try {
      // --recover runs under the supervisor: a checkpointed completion
      // frontier plus evict-and-remap + resume on permanent worker loss.
      outcome = o.recover ? engine::run_supervised(*backend, image, launch)
                          : backend->run(image, launch);
    } catch (const engine::UnsupportedLaunch& e) {
      err << "rioflow: " << e.what() << "\n";
      return 2;
    }
    best_s = std::min(best_s, sw.elapsed_s());
  }
  const support::RunStats& stats = outcome.stats;
  const stf::Trace& trace = outcome.trace;

  // ---- report -------------------------------------------------------------
  support::Table table({"engine", "workload", "tasks", "workers", "time"});
  table.row()
      .str(o.engine)
      .str(wl.name)
      .integer(static_cast<long long>(wl.flow.num_tasks()))
      .integer(o.workers)
      .str(outcome.virtual_time
               ? support::format_duration_ns(
                     static_cast<double>(outcome.makespan)) +
                     " (virtual)"
               : support::format_duration_ns(best_s * 1e9));
  if (o.csv)
    table.print_csv(out);
  else
    table.print(out);

  if (o.recover)
    out << "recovery: " << outcome.evictions << " evictions, "
        << outcome.tasks_replayed << " tasks replayed"
        << (outcome.evictions > 0
                ? ", " + support::format_duration_ns(
                      static_cast<double>(outcome.recovery_wall_ns)) +
                      " recovering"
                : std::string())
        << "\n";

  if (o.decompose) {
    const auto e = metrics::decompose_synthetic(stats.cumulative());
    out << "e_p = " << e.e_p << ", e_r = " << e.e_r
        << ", e_p*e_r = " << e.e_p * e.e_r << "\n";
  }
  if (want_trace) {
    if (trace.size() == 0) {
      err << "rioflow: engine '" << o.engine << "' produced no trace\n";
      return 2;
    }
    std::ofstream f(o.trace_path);
    if (!f) {
      err << "rioflow: cannot write " << o.trace_path << "\n";
      return 2;
    }
    stf::export_chrome_trace(trace, wl.flow, f);
    out << "wrote " << o.trace_path << "\n";
  }
  return 0;
}

}  // namespace rio::cli
