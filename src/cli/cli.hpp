// rioflow — command-line driver over the whole library.
//
// Lets a user generate any built-in workload, execute it on any engine
// (sequential / RIO / pruned RIO / centralized OoO / virtual-time
// simulators), and emit timing, the Section-2.3 efficiency decomposition,
// Graphviz DOT of the DAG, and Chrome traces — without writing C++.
// The parsing/dispatch logic lives in this library so the test suite can
// drive it; tools/rioflow.cpp is a thin main().
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rio::cli {

struct Options {
  // Subcommand: "" runs the workload (the historical behaviour); "lint"
  // statically analyses it without executing anything; "check" executes it
  // with sync-event recording and runs the happens-before race checker;
  // "chaos" sweeps a fault plan over engines and verifies every surviving
  // run against the sequential oracle; "profile" executes with the
  // rio::obs telemetry hub attached and reports per-worker phase totals,
  // counters and the e_p*e_r decomposition; "blame" executes with the
  // flight recorder on and runs the obs::causal analyzer (executed-DAG
  // critical path, per-task/per-handle blame, top stall edges);
  // "obs-diff" compares two rio.obs.v1 reports; "engines" lists the
  // registered backends with their capability flags (engine::Registry);
  // "verify" model-checks the engine's real synchronization code on a
  // small flow (mc::impl: DPOR over every interleaving of the protocol's
  // shared-word operations); "optimize" runs the flowpass pipeline over the
  // compiled image, byte-verifies the rewrite against the sequential
  // oracle, and compares optimized vs unoptimized execution.
  std::string command;

  // Positional (non-flag) operands after the command — only obs-diff
  // takes any (the two report files to compare).
  std::vector<std::string> inputs;

  // Workload selection.
  std::string workload = "independent";  ///< independent | random | chain |
                                         ///< gemm | lu | cholesky | stencil |
                                         ///< taskbench:<pattern> |
                                         ///< lintfix:<fixture>
  std::uint64_t tasks = 4096;   ///< synthetic workloads: task count
  std::uint32_t tiles = 8;      ///< tiled workloads: grid dimension
  std::uint32_t width = 24;     ///< taskbench: points per step
  std::uint32_t steps = 32;     ///< taskbench/stencil: time steps
  std::uint64_t task_size = 1000;  ///< counter iterations / virtual cost
  std::uint64_t seed = 42;

  // Engine selection.
  std::string engine = "rio";  ///< any engine::Registry name or alias — see
                               ///< `rioflow engines` (docs/engines.md);
                               ///< default overridable via RIOFLOW_ENGINE
  bool engine_given = false;   ///< --engine was passed explicitly
  std::uint32_t workers = 2;
  std::string mapping = "owner";    ///< rr | block | owner
  std::string policy = "yield";     ///< spin | yield | block
  std::string scheduler = "fifo";   ///< fifo | lifo | locality | priority
  std::string queue = "locked";     ///< locked | ring (coor ready queue)
  int repeat = 1;

  // Analysis (lint / check).
  std::uint32_t counter_bits = 64;  ///< lint: protocol counter width (RP2xx)
  std::string fail_on = "warning";  ///< exit non-zero at this severity:
                                    ///< error | warning | info

  // Model checking (verify).
  int max_preemptions = -1;  ///< bound context switches; < 0 = unbounded
  bool naive = false;        ///< disable DPOR (full naive enumeration)

  // Chaos sweep (docs/robustness.md).
  double fault_rate = 0.05;         ///< base P(throw) per (task, attempt)
  std::uint32_t fault_seeds = 3;    ///< fault-plan seeds per (engine, rate)
  std::uint32_t retries = 3;        ///< RetryPolicy::max_attempts
  std::uint64_t watchdog_ms = 2000; ///< progress watchdog window
  std::string engines = "rio,rio-pruned,coor,hybrid";  ///< sweep targets
  std::string faults = "transient"; ///< fault kinds to sweep:
                                    ///< transient | stall | crash | all
  std::string retry_tasks;          ///< per-task retry overrides "id=N,..."
  bool quick = false;               ///< shrink the sweep for CI gates
  bool workload_given = false;      ///< --workload was passed explicitly

  // Recovery (run command): wrap the execution in engine::run_supervised so
  // a permanent worker loss is survived by evict-and-remap + resume from
  // the checkpointed completion frontier instead of aborting the run.
  bool recover = false;

  // Optimization pipeline (optimize command; docs/passes.md).
  std::string passes;                ///< csv of flowpass::Registry names;
                                     ///< empty = all registered passes
  bool tune = false;                 ///< score map candidates by simulated
                                     ///< makespan instead of the static model
  bool report = false;               ///< print the per-pass report table
  std::uint64_t fuse_threshold = 1000;  ///< fuse: cost cutoff (also RF501)

  // Causal profiling (profile / blame) and obs-diff.
  bool blame = false;           ///< profile: also run the causal analyzer
  std::uint64_t sample = 1;     ///< record every Nth span (1 = all)
  std::size_t top_edges = 10;   ///< blame: stall edges shown / in JSON
  double threshold = 5.0;       ///< obs-diff: regression threshold (percent)

  // Outputs.
  bool summary = false;       ///< print flow structure summary
  bool decompose = false;     ///< print e_p / e_r decomposition
  std::string dot_path;       ///< write DAG as Graphviz DOT
  std::string trace_path;     ///< write Chrome trace JSON (real engines;
                              ///< for profile: the obs Perfetto trace)
  std::string json_path;      ///< machine-readable report: rio.obs.v1
                              ///< (profile), rio.chaos.v2 (chaos),
                              ///< rio.lint.v1 / rio.check.v1 (lint/check),
                              ///< rio.engines.v1 (engines),
                              ///< rio.verify.v1 (verify),
                              ///< rio.optimize.v1 (optimize)
  bool csv = false;

  bool help = false;
};

/// Parses argv. On failure returns false and fills `error`.
bool parse(int argc, const char* const* argv, Options& out,
           std::string& error);

/// Usage text.
std::string usage();

/// Executes per the options; prints results to `out`. Returns process exit
/// code (0 ok, 1 bad configuration — unknown engine/workload/option, 2
/// execution problem — including a structured engine::UnsupportedLaunch
/// when a knob exceeds the backend's capabilities, 3 analysis
/// findings at or above the --fail-on severity — or, for chaos, any stall,
/// oracle mismatch or unexpected error in the sweep).
int run(const Options& options, std::ostream& out, std::ostream& err);

}  // namespace rio::cli
