#include "support/assert.hpp"
#include "sim/simulate.hpp"

namespace rio::sim {

Report simulate_hybrid(const stf::TaskFlow& flow,
                       const std::vector<hybrid::Phase>& phases,
                       const DecentralizedParams& dparams,
                       const CentralizedParams& cparams,
                       const TimeScale& scale) {
  const stf::FlowImage image = stf::FlowImage::compile(flow);
  return simulate_hybrid(image, phases, dparams, cparams, scale);
}

Report simulate_hybrid(const stf::FlowImage& image,
                       const std::vector<hybrid::Phase>& phases,
                       const DecentralizedParams& dparams,
                       const CentralizedParams& cparams,
                       const TimeScale& scale) {
  const std::uint32_t p = dparams.workers;
  RIO_ASSERT_MSG(cparams.workers == p,
                 "hybrid phases must share one worker pool");

  // Validate the tiling, mirroring hybrid::Runtime::run.
  std::size_t expect = 0;
  for (const auto& ph : phases) {
    RIO_ASSERT_MSG(ph.first == expect, "phases must tile the flow in order");
    expect += ph.count;
  }
  RIO_ASSERT_MSG(expect == image.size(), "phases must cover the flow");

  Report total;
  total.total_threads = p + 1;  // p workers + the dynamic phases' master
  total.stats.workers.resize(p + 1);

  for (const auto& ph : phases) {
    if (ph.count == 0) continue;
    const stf::ImageRange range(image, ph.first, ph.count);
    Report rep;
    if (ph.kind == hybrid::Phase::Kind::kStatic) {
      RIO_ASSERT(ph.mapping.valid());
      rep = simulate_decentralized(range, ph.mapping, dparams, scale);
      // The master-capable thread idles through static phases.
      total.stats.workers[p].buckets.idle_ns += rep.makespan;
    } else {
      rep = simulate_centralized(range, cparams, scale);
    }
    total.makespan += rep.makespan;
    total.injected_throws += rep.injected_throws;
    total.injected_stalls += rep.injected_stalls;
    total.retried_tasks += rep.retried_tasks;
    total.failed_tasks += rep.failed_tasks;
    total.evictions += rep.evictions;
    total.tasks_replayed += rep.tasks_replayed;
    for (std::size_t w = 0; w < rep.stats.workers.size(); ++w) {
      auto& dst = total.stats.workers[w < p ? w : p];
      const auto& src = rep.stats.workers[w];
      dst.buckets += src.buckets;
      dst.tasks_executed += src.tasks_executed;
      dst.tasks_skipped += src.tasks_skipped;
      dst.waits += src.waits;
    }
  }
  total.stats.wall_ns = total.makespan;
  return total;
}

}  // namespace rio::sim
