// Discrete-event simulation of the two execution models.
//
// Both simulators consume a materialized TaskFlow (costs in virtual
// instructions) and produce the same RunStats shape as the real runtimes,
// with the tau buckets in virtual ticks and — unlike wall-clock
// measurements — the EXACT identity tau_task + tau_idle + tau_runtime ==
// p * makespan per construction. metrics/ then derives the paper's
// efficiency decomposition from them.
//
// Determinism: given the same flow, mapping and parameters the simulators
// are bit-reproducible; no randomness, no host-speed dependence.
#pragma once

#include <vector>

#include "support/stats.hpp"
#include "sim/params.hpp"
#include "hybrid/runtime.hpp"
#include "rio/mapping.hpp"
#include "stf/dependency.hpp"
#include "stf/flow_image.hpp"
#include "stf/flow_range.hpp"
#include "stf/task_flow.hpp"

namespace rio::sim {

/// Result of one simulated execution.
struct Report {
  support::RunStats stats;    ///< buckets in virtual ticks; wall_ns==makespan
  std::uint64_t makespan = 0; ///< virtual t_p
  std::uint64_t total_threads = 0;  ///< p used for the tau identity

  // Resilience counters (sim/fault_model.hpp); all zero when the params
  // carry no fault plan.
  std::uint64_t injected_throws = 0;  ///< faulted (task, attempt) pairs
  std::uint64_t injected_stalls = 0;  ///< tasks that hit a stall window
  std::uint64_t retried_tasks = 0;    ///< tasks needing >= 1 re-execution
  std::uint64_t failed_tasks = 0;     ///< tasks that exhausted the budget

  // Worker-loss recovery counters (crash faults in the plan): evictions
  // counts modelled worker deaths; tasks_replayed counts the completed
  // tasks the resumed attempt walked again as protocol no-ops.
  std::uint64_t evictions = 0;
  std::uint64_t tasks_replayed = 0;
};

/// Simulates RIO's decentralized in-order model (Section 3): every virtual
/// worker scans the whole flow, pays skip costs for foreign tasks and
/// own+wait+execute costs for its own, with dependency stalls derived from
/// the exact Algorithm-2 semantics. Runs in O(n * accesses) time using the
/// prefix-sum formulation (worker cursors = shared prefix + per-worker
/// offset), valid because task ids are a topological order of both the
/// dependency DAG and each worker's in-order chain.
/// The TaskFlow/FlowRange entry points compile a throwaway FlowImage; sweep
/// drivers that simulate one flow many times (bench/fig*) should compile
/// once and pass the image.
Report simulate_decentralized(const stf::TaskFlow& flow,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale = {});
Report simulate_decentralized(const stf::FlowRange& range,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale = {});
Report simulate_decentralized(const stf::FlowImage& image,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale = {});
Report simulate_decentralized(const stf::ImageRange& range,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale = {});

/// Simulates the centralized OoO model (Figure 1): a dedicated master
/// discovers one task per master_per_task(+accesses) ticks; tasks whose
/// dependencies are resolved AND that have been discovered enter a ready
/// pool; idle workers take the earliest-ready task (list scheduling).
/// Event-driven, O(n log n).
Report simulate_centralized(const stf::TaskFlow& flow,
                            const CentralizedParams& params,
                            const TimeScale& scale = {});
Report simulate_centralized(const stf::FlowRange& range,
                            const CentralizedParams& params,
                            const TimeScale& scale = {});
Report simulate_centralized(const stf::FlowImage& image,
                            const CentralizedParams& params,
                            const TimeScale& scale = {});
Report simulate_centralized(const stf::ImageRange& range,
                            const CentralizedParams& params,
                            const TimeScale& scale = {});

/// Simulates the hybrid execution model (src/hybrid): phases run
/// alternately on the decentralized and centralized virtual engines with a
/// barrier between them. Worker slots 0..p-1 aggregate across phases; the
/// extra slot is the dynamic phases' master (idle in static phases). The
/// decentralized params' worker count must equal the centralized one so
/// the thread pool is comparable: p workers + 1 master-capable thread.
Report simulate_hybrid(const stf::TaskFlow& flow,
                       const std::vector<hybrid::Phase>& phases,
                       const DecentralizedParams& dparams,
                       const CentralizedParams& cparams,
                       const TimeScale& scale = {});
Report simulate_hybrid(const stf::FlowImage& image,
                       const std::vector<hybrid::Phase>& phases,
                       const DecentralizedParams& dparams,
                       const CentralizedParams& cparams,
                       const TimeScale& scale = {});

/// Ideal lower bound: critical path vs perfect load balance on `workers`
/// cores with zero runtime cost — max(cp, total/|workers|). Used by benches
/// to draw the "perfect runtime" reference line.
std::uint64_t ideal_makespan(const stf::TaskFlow& flow,
                             const stf::DependencyGraph& graph,
                             std::uint32_t workers, const TimeScale& scale = {});

}  // namespace rio::sim
