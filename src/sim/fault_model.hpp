// Fault model for the discrete-event simulators (docs/robustness.md).
//
// The real runtimes pay for an injected transient fault with a rollback
// plus a re-execution (and an optional backoff); an injected stall simply
// burns worker time. The simulators charge the same costs in VIRTUAL ticks
// so fault sweeps — seeds x rates x retry budgets — are reproducible
// without real threads: given the same flow, plan and retry policy the
// extra ticks and the resilience counters are bit-identical across hosts.
//
// The decisions come from the exact FaultInjector the runtimes use, so a
// simulated sweep and a real chaos run over the same plan agree on WHICH
// (task, attempt) pairs fault.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/fault.hpp"
#include "sim/simulate.hpp"

namespace rio::sim {

/// Per-simulation fault state: wraps a FaultInjector plus the retry policy
/// and converts its decisions into virtual-tick penalties and Report
/// counters. One instance per simulated run (the injector is stateful:
/// N-shot budgets deplete).
class SimFaults {
 public:
  SimFaults(const support::FaultPlan& plan, const support::RetryPolicy& retry)
      : injector_(plan), retry_(retry), active_(plan.any()) {}

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Extra virtual ticks task `id` costs under the plan: injected stalls
  /// burn their window; each retried attempt wastes one execution of
  /// `cost` plus the backoff. Exhausted budgets count as failed_tasks (the
  /// simulators keep going — they model the schedule, not the unwind).
  std::uint64_t extra_ticks(std::uint64_t id, std::uint64_t cost,
                            Report& rep) {
    if (!active_) return 0;
    std::uint64_t extra = 0;
    const std::uint64_t stall = injector_.stall_ns(id);
    if (stall > 0) {
      extra += stall;
      ++rep.injected_stalls;
    }
    const std::uint32_t max_attempts =
        std::max<std::uint32_t>(1, retry_.max_attempts);
    bool retried = false;
    for (std::uint32_t attempt = 1; injector_.should_throw(id, attempt);
         ++attempt) {
      ++rep.injected_throws;
      if (attempt >= max_attempts) {
        ++rep.failed_tasks;
        break;
      }
      // The faulted attempt's work is wasted: rollback, back off, re-run.
      extra += cost + retry_.backoff_ns;
      retried = true;
    }
    if (retried) ++rep.retried_tasks;
    return extra;
  }

  /// Extra virtual ticks a crash fault on task `id` costs when
  /// `tasks_done` tasks completed before it: the crashed attempt's body
  /// (`cost`) is wasted, the watchdog burns `detect_ticks` before the
  /// supervisor evicts, and the resumed attempt replays every completed
  /// task at `replay_per_task` ticks. Returns 0 when the plan does not
  /// select this task (or the crash budget is spent). The caller decides
  /// how the charge is distributed over the virtual workers.
  std::uint64_t crash_recovery_ticks(std::uint64_t id, std::uint64_t cost,
                                     std::uint64_t tasks_done,
                                     std::uint64_t detect_ticks,
                                     std::uint64_t replay_per_task,
                                     Report& rep) {
    if (!active_ || !injector_.should_crash(id)) return 0;
    ++rep.evictions;
    rep.tasks_replayed += tasks_done;
    return cost + detect_ticks + replay_per_task * tasks_done;
  }

 private:
  support::FaultInjector injector_;
  support::RetryPolicy retry_;
  bool active_;
};

}  // namespace rio::sim
