// Simulator cost parameters.
//
// The discrete-event simulator executes a task flow on p VIRTUAL cores in
// virtual time (ticks ~ nanoseconds), so the paper's 24- and 64-core
// experiments can be regenerated on any host. The cost parameters encode
// the per-task runtime costs of the two execution models — the t_r terms
// of cost models (1) and (2) in Section 3.3 — refined per access so that
// workloads with more dependencies pay proportionally more, as they do in
// the real runtimes.
//
// Default values are calibrated to the orders of magnitude reported by the
// paper and the Task Bench survey it cites:
//   * RIO's skip path is "one or two writes in private memory per
//     dependency" (Section 3.4): single-digit ns per access.
//   * RIO's own-task path does a handful of atomic operations: tens of ns.
//   * StarPU-class centralized runtimes spend on the order of a
//     microsecond per task in the master (Task Bench reports ~100 us
//     minimum profitable task size on ~24-core nodes, i.e. per-task
//     management within ~1-2 orders of magnitude below that).
// Every bench prints the parameters it used; EXPERIMENTS.md discusses the
// sensitivity.
#pragma once

#include <cstdint>
#include <vector>

#include "support/fault.hpp"

namespace rio::obs {
class Hub;
}

namespace rio::sim {

/// Virtual time unit: 1 tick == 1 ns of modelled time. Task `cost` fields
/// (in "instructions") are converted with instructions_per_tick.
struct TimeScale {
  double instructions_per_tick = 1.0;  ///< ~1 simple instruction per ns
};

/// Decentralized in-order (RIO) model costs.
struct DecentralizedParams {
  std::uint32_t workers = 24;

  // Cost a worker pays to SKIP a task mapped elsewhere (Algorithm 1's
  // declare path): loop/dispatch overhead + private writes per access.
  std::uint64_t skip_per_task = 3;
  std::uint64_t skip_per_access = 2;

  // Cost a worker pays AROUND a task it executes: mapping call + loop on
  // top of get_*/terminate_* per access (atomic ops, fences).
  std::uint64_t own_per_task = 25;
  std::uint64_t own_per_access = 20;

  // When true, model task pruning (Section 3.5): workers do not pay skip
  // costs at all — each walks only its own task list.
  bool pruned = false;

  // Relative execution speed per worker (empty = homogeneous 1.0). Values
  // < 1 model stragglers (thermal throttling, noisy neighbours): the
  // scenario where a STATIC mapping pays for its lost reactivity — the
  // trade-off the paper's abstract concedes.
  std::vector<double> worker_speed;

  // Extra ticks a dependency costs when producer and consumer are mapped
  // to DIFFERENT workers (cache-to-cache / cross-NUMA transfer). A good
  // owner-computes mapping keeps dependencies worker-local and pays
  // nothing — the locality advantage of static placement.
  std::uint64_t cross_worker_latency = 0;

  // Deterministic fault model (sim/fault_model.hpp): injected stalls burn
  // virtual ticks; injected throws cost a wasted execution per retried
  // attempt. Defaults (empty plan) are cost-free.
  support::FaultPlan faults;
  support::RetryPolicy retry;

  // Worker-loss recovery cost model (docs/robustness.md "worker loss"): a
  // crash fault in the plan wastes the crashed attempt, burns the watchdog
  // detection window on EVERY worker (the run aborts globally before the
  // supervisor evicts and resumes), and replays each already-completed
  // task as a protocol no-op on the resumed attempt. Calibrated to the
  // real engines' defaults: 100 us watchdog, single-digit-ns replay ops.
  std::uint64_t crash_detect_ticks = 100'000;
  std::uint64_t replay_per_task = 5;

  obs::Hub* obs = nullptr;  ///< telemetry hub (docs/observability.md); not
                            ///< owned. Timestamps are VIRTUAL ticks — the
                            ///< hub's clock unit is switched to kTicks.
};

/// Centralized out-of-order (StarPU-like) model costs.
struct CentralizedParams {
  std::uint32_t workers = 23;  ///< executing workers; the master is EXTRA,
                               ///< so workers=23 + master models 24 threads

  // Master-side cost to discover, track and dispatch one task. This is the
  // serialized resource of cost model (1).
  std::uint64_t master_per_task = 1200;
  std::uint64_t master_per_access = 150;

  // Worker-side cost to pop a task from the shared queue (lock + cache
  // transfer) and to publish completion.
  std::uint64_t worker_pop = 250;

  // Relative execution speed per worker (empty = homogeneous 1.0). The
  // dynamic scheduler naturally routes around stragglers.
  std::vector<double> worker_speed;

  // Extra ticks per dependency edge: a queue-fed worker pool gives no
  // producer-consumer affinity, so every dependency is assumed to cross
  // caches (the pessimistic-but-fair counterpart of the decentralized
  // model's mapping-aware latency).
  std::uint64_t cross_worker_latency = 0;

  // Deterministic fault model — same semantics as DecentralizedParams.
  support::FaultPlan faults;
  support::RetryPolicy retry;

  // Worker-loss recovery cost model — same semantics as
  // DecentralizedParams (detection is the watchdog window; replay is the
  // master re-discovering completed tasks on resume).
  std::uint64_t crash_detect_ticks = 100'000;
  std::uint64_t replay_per_task = 5;

  obs::Hub* obs = nullptr;  ///< telemetry hub; worker slots 0..p-1, master
                            ///< slot p, virtual-tick timestamps (kTicks)
};

}  // namespace rio::sim
