#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"
#include "obs/obs.hpp"
#include "sim/fault_model.hpp"
#include "sim/simulate.hpp"

namespace rio::sim {
namespace {

std::uint64_t exec_ticks(std::uint64_t instructions, const TimeScale& scale) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(instructions) /
                   scale.instructions_per_tick));
}

}  // namespace

Report simulate_decentralized(const stf::TaskFlow& flow,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale) {
  const stf::FlowImage image = stf::FlowImage::compile(flow);
  return simulate_decentralized(stf::ImageRange(image), mapping, params,
                                scale);
}

Report simulate_decentralized(const stf::FlowRange& range,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale) {
  const stf::FlowImage image = stf::FlowImage::compile(range);
  return simulate_decentralized(stf::ImageRange(image), mapping, params,
                                scale);
}

Report simulate_decentralized(const stf::FlowImage& image,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale) {
  return simulate_decentralized(stf::ImageRange(image), mapping, params,
                                scale);
}

Report simulate_decentralized(const stf::ImageRange& range,
                              const rt::Mapping& mapping,
                              const DecentralizedParams& params,
                              const TimeScale& scale) {
  RIO_ASSERT(params.workers > 0 && mapping.valid());
  const std::size_t n = range.size();
  const std::uint32_t p = params.workers;
  const stf::DependencyGraph graph(range);

  // Worker cursors are expressed as shared_prefix + per-worker offset:
  // every worker pays the same skip cost for a foreign task, so the skip
  // contribution is a global prefix sum S and only deviations (own tasks,
  // stalls) are per-worker. This makes the scan O(n), independent of p.
  std::uint64_t prefix = 0;                 // S(t): skip cost of tasks < t
  std::vector<std::int64_t> delta(p, 0);    // cursor_w = S(t) + delta_w
  std::vector<std::uint64_t> finish(n, 0);
  std::vector<support::WorkerStats> ws(p);
  std::vector<std::uint64_t> own_skip(p, 0);  // skip cost of own tasks

  Report rep;
  SimFaults faults(params.faults, params.retry);

  // Telemetry lenses: timestamps are virtual ticks, same schema as the real
  // runtimes (docs/observability.md). Phase totals reproduce the ws buckets
  // exactly: kBody == task, kAcquireWait == idle, kMgmt == runtime.
  obs::Hub* hub = params.obs;
  std::vector<obs::WorkerObs> obses;
  if (hub != nullptr) {
    hub->set_clock_unit(obs::ClockUnit::kTicks);
    hub->ensure_workers(p);
    obses.resize(p);
    for (std::uint32_t w = 0; w < p; ++w) obses[w].bind(hub, w);
  }

  for (stf::TaskId t = 0; t < n; ++t) {
    const auto num_acc = static_cast<std::uint64_t>(range.num_accesses(t));
    const std::uint64_t skip_cost =
        params.pruned ? 0
                      : params.skip_per_task + params.skip_per_access * num_acc;
    const stf::WorkerId w = mapping(range.task_id(t));
    RIO_ASSERT_MSG(w < p, "mapping out of range for simulated workers");

    const std::uint64_t own_cost =
        params.own_per_task + params.own_per_access * num_acc;
    std::uint64_t cost = exec_ticks(range.cost(t), scale);
    if (!params.worker_speed.empty()) {
      RIO_ASSERT(params.worker_speed.size() >= p);
      cost = static_cast<std::uint64_t>(
          static_cast<double>(cost) / params.worker_speed[w]);
    }
    cost += faults.extra_ticks(range.task_id(t), cost, rep);
    // A crash fault aborts the run globally: the owner pays the wasted
    // attempt + detection + frontier replay inside its finish time, every
    // other worker stalls for the same window (added to the shared prefix
    // below, excluded from the owner's own_skip so it is not charged
    // twice).
    const std::uint64_t recovery = faults.crash_recovery_ticks(
        range.task_id(t), cost, t, params.crash_detect_ticks,
        params.replay_per_task, rep);

    const auto arrival = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prefix) + delta[w]);
    const std::uint64_t after_overhead = arrival + own_cost;
    std::uint64_t dep_ready = 0;
    stf::TaskId blocker = stf::kInvalidTask;  // argmax predecessor = exact cause
    for (stf::TaskId pr : graph.predecessors(t)) {
      std::uint64_t ready_at = finish[pr];
      if (params.cross_worker_latency > 0 &&
          mapping(range.task_id(pr)) != w)
        ready_at += params.cross_worker_latency;
      if (ready_at > dep_ready) {
        dep_ready = ready_at;
        blocker = pr;
      }
    }
    const std::uint64_t start = std::max(after_overhead, dep_ready);
    const std::uint64_t fin = start + cost + recovery;
    finish[t] = fin;

    ws[w].buckets.task_ns += cost;
    ws[w].buckets.runtime_ns += own_cost + recovery;
    if (start > after_overhead) {
      ws[w].buckets.idle_ns += start - after_overhead;
      ++ws[w].waits;
    }
    ++ws[w].tasks_executed;
    own_skip[w] += skip_cost;

    if (hub != nullptr) {
      obs::WorkerObs& ob = obses[w];
      const auto id = static_cast<std::uint64_t>(range.task_id(t));
      ob.span(obs::Phase::kMgmt, id, arrival, after_overhead);
      if (start > after_overhead) {
        // Dep-bound start: the argmax predecessor is the exact cause.
        const std::uint64_t cause =
            blocker == stf::kInvalidTask
                ? obs::kNoCause
                : obs::make_cause(
                      static_cast<std::uint64_t>(range.task_id(blocker)));
        ob.span(obs::Phase::kAcquireWait, id, after_overhead, start, cause);
        ob.count(obs::Counter::kProtocolWaits);
      }
      ob.span(obs::Phase::kBody, id, start, start + cost);
      if (recovery > 0)
        ob.span(obs::Phase::kMgmt, id, start + cost, fin);
      ob.count(obs::Counter::kTasksExecuted);
    }

    prefix += skip_cost + recovery;  // S(t+1); recovery stalls everyone
    own_skip[w] += recovery;         // ...but the owner already paid in fin
    delta[w] = static_cast<std::int64_t>(fin) -
               static_cast<std::int64_t>(prefix);
  }

  // Foreign-task skip costs are runtime management; a worker pays the
  // global prefix minus the skip cost of its own tasks.
  for (std::uint32_t w = 0; w < p; ++w) {
    ws[w].buckets.runtime_ns += prefix - own_skip[w];
    ws[w].tasks_skipped = n - ws[w].tasks_executed;
    if (params.pruned) ws[w].tasks_skipped = 0;
  }

  // Makespan and trailing idle (workers that finish early wait for the
  // slowest — exactly the tau_p = p * t_p accounting of Section 2.3).
  std::uint64_t makespan = 0;
  for (std::uint32_t w = 0; w < p; ++w) {
    const auto cursor = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prefix) + delta[w]);
    makespan = std::max(makespan, cursor);
  }
  for (std::uint32_t w = 0; w < p; ++w) {
    const auto cursor = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prefix) + delta[w]);
    ws[w].buckets.idle_ns += makespan - cursor;
  }

  if (hub != nullptr) {
    for (std::uint32_t w = 0; w < p; ++w) {
      obs::WorkerObs& ob = obses[w];
      // Foreign-task skip management and trailing idle have no span of their
      // own; fold them straight into the phase totals so the tick identity
      // (kBody + kAcquireWait + kMgmt == makespan per worker) holds exactly.
      const auto cursor = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prefix) + delta[w]);
      ob.phase_ns[static_cast<std::size_t>(obs::Phase::kMgmt)] +=
          prefix - own_skip[w];
      ob.phase_ns[static_cast<std::size_t>(obs::Phase::kAcquireWait)] +=
          makespan - cursor;
      if (ws[w].tasks_skipped > 0)
        ob.count(obs::Counter::kTasksSkipped, ws[w].tasks_skipped);
      ob.commit(hub);
    }
    const std::uint64_t injected = rep.injected_stalls + rep.injected_throws;
    if (injected > 0)
      hub->global_counters().add(obs::Counter::kFaultsInjected, injected);
    if (rep.retried_tasks > 0)
      hub->global_counters().add(obs::Counter::kRetries, rep.retried_tasks);
    if (rep.evictions > 0)
      hub->global_counters().add(obs::Counter::kEvictions, rep.evictions);
    if (rep.tasks_replayed > 0)
      hub->global_counters().add(obs::Counter::kTasksReplayed,
                                 rep.tasks_replayed);
  }

  rep.makespan = makespan;
  rep.total_threads = p;
  rep.stats.workers = std::move(ws);
  rep.stats.wall_ns = makespan;
  return rep;
}

std::uint64_t ideal_makespan(const stf::TaskFlow& flow,
                             const stf::DependencyGraph& graph,
                             std::uint32_t workers, const TimeScale& scale) {
  RIO_ASSERT(workers > 0);
  std::uint64_t total = 0;
  for (const stf::Task& t : flow.tasks()) total += exec_ticks(t.cost, scale);
  const std::uint64_t balanced = (total + workers - 1) / workers;
  // Critical path in ticks: rescale task costs the same way.
  std::uint64_t cp = 0;
  {
    std::vector<std::uint64_t> fin(flow.num_tasks(), 0);
    for (stf::TaskId t = 0; t < flow.num_tasks(); ++t) {
      std::uint64_t start = 0;
      for (stf::TaskId p : graph.predecessors(t))
        start = std::max(start, fin[p]);
      fin[t] = start + exec_ticks(flow.task(t).cost, scale);
      cp = std::max(cp, fin[t]);
    }
  }
  return std::max(balanced, cp);
}

}  // namespace rio::sim
