// Umbrella header for the discrete-event execution-model simulator.
#pragma once

#include "sim/params.hpp"    // IWYU pragma: export
#include "sim/simulate.hpp"  // IWYU pragma: export
