#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "support/assert.hpp"
#include "obs/obs.hpp"
#include "sim/fault_model.hpp"
#include "sim/simulate.hpp"

namespace rio::sim {
namespace {

std::uint64_t exec_ticks(std::uint64_t instructions, const TimeScale& scale) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(instructions) /
                   scale.instructions_per_tick));
}

}  // namespace

Report simulate_centralized(const stf::TaskFlow& flow,
                            const CentralizedParams& params,
                            const TimeScale& scale) {
  const stf::FlowImage image = stf::FlowImage::compile(flow);
  return simulate_centralized(stf::ImageRange(image), params, scale);
}

Report simulate_centralized(const stf::FlowRange& range,
                            const CentralizedParams& params,
                            const TimeScale& scale) {
  const stf::FlowImage image = stf::FlowImage::compile(range);
  return simulate_centralized(stf::ImageRange(image), params, scale);
}

Report simulate_centralized(const stf::FlowImage& image,
                            const CentralizedParams& params,
                            const TimeScale& scale) {
  return simulate_centralized(stf::ImageRange(image), params, scale);
}

Report simulate_centralized(const stf::ImageRange& range,
                            const CentralizedParams& params,
                            const TimeScale& scale) {
  RIO_ASSERT(params.workers > 0);
  const std::size_t n = range.size();
  const std::uint32_t p = params.workers;
  const stf::DependencyGraph graph(range);

  // Master discovery times: the master unrolls sequentially, paying a
  // per-task (+ per-access) management cost — the serialized resource of
  // cost model (1). discovery[t] is when task t is known to the runtime.
  std::vector<std::uint64_t> discovery(n, 0);
  std::uint64_t master_clock = 0;
  for (stf::TaskId t = 0; t < n; ++t) {
    master_clock += params.master_per_task +
                    params.master_per_access * range.num_accesses(t);
    discovery[t] = master_clock;
  }
  const std::uint64_t master_total = master_clock;

  // Event-driven list scheduling: a task enters the ready pool when its
  // dependencies resolved AND the master discovered it; the earliest-ready
  // task goes to the earliest-free worker. Ready times are pushed in
  // causal order (every new ready time exceeds the finish that caused it),
  // so a plain min-heap pops in global time order.
  std::vector<std::size_t> remaining(n);
  std::vector<std::uint64_t> dep_finish(n, 0);
  // Wait-cause: the predecessor whose finish defines dep_finish[t] —
  // exact in virtual time. kInvalidTask means master-discovery-bound.
  std::vector<stf::TaskId> blocker(n, stf::kInvalidTask);
  using QItem = std::pair<std::uint64_t, stf::TaskId>;  // (ready_time, task)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> ready;
  for (stf::TaskId t = 0; t < n; ++t) {
    remaining[t] = graph.in_degree(t);
    if (remaining[t] == 0) ready.emplace(discovery[t], t);
  }

  using WItem = std::pair<std::uint64_t, std::uint32_t>;  // (free_time, id)
  std::priority_queue<WItem, std::vector<WItem>, std::greater<>> free_workers;
  for (std::uint32_t w = 0; w < p; ++w) free_workers.emplace(0, w);

  std::vector<support::WorkerStats> ws(p + 1);  // + master
  std::vector<std::uint64_t> finish(n, 0);
  std::uint64_t makespan = master_total;
  std::size_t executed = 0;

  Report rep;
  SimFaults faults(params.faults, params.retry);

  // Telemetry lenses (slot p = master), virtual-tick timestamps. Phase
  // totals reproduce the ws buckets: kBody == task, kAcquireWait == idle,
  // kMgmt == runtime (worker pops; master unroll).
  obs::Hub* hub = params.obs;
  std::vector<obs::WorkerObs> obses;
  if (hub != nullptr) {
    hub->set_clock_unit(obs::ClockUnit::kTicks);
    hub->ensure_workers(p + 1);
    obses.resize(p + 1);
    for (std::uint32_t w = 0; w <= p; ++w) obses[w].bind(hub, w);
  }

  while (executed < n) {
    RIO_ASSERT_MSG(!ready.empty(), "no ready task but flow incomplete");
    const auto [ready_time, t] = ready.top();
    ready.pop();
    const auto [wfree, w] = free_workers.top();
    free_workers.pop();

    if (ready_time > wfree) ws[w].buckets.idle_ns += ready_time - wfree;
    const std::uint64_t start =
        std::max(ready_time, wfree) + params.worker_pop;
    std::uint64_t cost = exec_ticks(range.cost(t), scale);
    if (!params.worker_speed.empty()) {
      RIO_ASSERT(params.worker_speed.size() >= p);
      cost = static_cast<std::uint64_t>(
          static_cast<double>(cost) / params.worker_speed[w]);
    }
    cost += faults.extra_ticks(range.task_id(t), cost, rep);
    // A crash fault on this task: the wasted attempt + watchdog detection
    // + frontier replay extend its finish time; dependents (and the
    // makespan) wait behind it, which is how the global abort-and-resume
    // shows up in an event-driven schedule.
    const std::uint64_t recovery = faults.crash_recovery_ticks(
        range.task_id(t), cost, executed, params.crash_detect_ticks,
        params.replay_per_task, rep);
    const std::uint64_t fin = start + cost + recovery;
    finish[t] = fin;
    ws[w].buckets.runtime_ns += params.worker_pop + recovery;
    ws[w].buckets.task_ns += cost;
    ++ws[w].tasks_executed;
    ++executed;
    makespan = std::max(makespan, fin);
    free_workers.emplace(fin, w);

    if (hub != nullptr) {
      obs::WorkerObs& ob = obses[w];
      const auto id = static_cast<std::uint64_t>(range.task_id(t));
      if (ready_time > wfree) {
        // Dep-bound ready: blame the predecessor whose finish defined it;
        // discovery-bound ready is the master's serialization (no cause).
        const std::uint64_t cause =
            dep_finish[t] >= discovery[t] && blocker[t] != stf::kInvalidTask
                ? obs::make_cause(
                      static_cast<std::uint64_t>(range.task_id(blocker[t])))
                : obs::kNoCause;
        ob.span(obs::Phase::kAcquireWait, id, wfree, ready_time, cause);
        ob.count(obs::Counter::kProtocolWaits);
      }
      ob.span(obs::Phase::kMgmt, id, start - params.worker_pop, start);
      ob.span(obs::Phase::kBody, id, start, start + cost);
      if (recovery > 0)
        ob.span(obs::Phase::kMgmt, id, start + cost, fin);
      ob.count(obs::Counter::kQueuePops);
      ob.count(obs::Counter::kTasksExecuted);
    }

    for (stf::TaskId s : graph.successors(t)) {
      const std::uint64_t reach = fin + params.cross_worker_latency;
      if (reach > dep_finish[s]) {
        dep_finish[s] = reach;
        blocker[s] = t;
      }
      if (--remaining[s] == 0)
        ready.emplace(std::max(discovery[s], dep_finish[s]), s);
    }
  }

  // Trailing idle for workers that finished before the makespan.
  while (!free_workers.empty()) {
    const auto [wfree, w] = free_workers.top();
    free_workers.pop();
    ws[w].buckets.idle_ns += makespan - wfree;
    if (hub != nullptr)
      obses[w].phase_ns[static_cast<std::size_t>(
          obs::Phase::kAcquireWait)] += makespan - wfree;
  }
  // Master accounting: pure management, then idle until the end.
  ws[p].buckets.runtime_ns = master_total;
  ws[p].buckets.idle_ns = makespan - master_total;

  if (hub != nullptr) {
    obs::WorkerObs& mob = obses[p];
    mob.span(obs::Phase::kMgmt, obs::kNoTask, 0, master_total);
    mob.phase_ns[static_cast<std::size_t>(obs::Phase::kAcquireWait)] +=
        makespan - master_total;
    mob.count(obs::Counter::kQueuePushes, n);
    mob.count(obs::Counter::kWakeups, n);
    for (std::uint32_t w = 0; w <= p; ++w) obses[w].commit(hub);
    const std::uint64_t injected = rep.injected_stalls + rep.injected_throws;
    if (injected > 0)
      hub->global_counters().add(obs::Counter::kFaultsInjected, injected);
    if (rep.retried_tasks > 0)
      hub->global_counters().add(obs::Counter::kRetries, rep.retried_tasks);
    if (rep.evictions > 0)
      hub->global_counters().add(obs::Counter::kEvictions, rep.evictions);
    if (rep.tasks_replayed > 0)
      hub->global_counters().add(obs::Counter::kTasksReplayed,
                                 rep.tasks_replayed);
  }

  rep.makespan = makespan;
  rep.total_threads = p + 1;
  rep.stats.workers = std::move(ws);
  rep.stats.wall_ns = makespan;
  return rep;
}

}  // namespace rio::sim
