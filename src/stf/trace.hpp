// Execution traces and their validation.
//
// A trace records, for each executed task, which worker ran it and in what
// order events happened. Validation checks the two properties the paper's
// TLA+ specification states (Appendix B): every execution respects the
// dependency DAG (sequential consistency), and no two conflicting tasks
// overlap (data-race freedom — checked via interval overlap when engines
// record timestamps). The validator is the bridge between the formal model
// (src/modelcheck) and the real runtimes: tests run engines with tracing
// enabled and feed the result here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stf/dependency.hpp"
#include "stf/task_flow.hpp"
#include "stf/types.hpp"

namespace rio::stf {

/// One executed task occurrence.
struct TraceEvent {
  TaskId task = kInvalidTask;
  WorkerId worker = kInvalidWorker;
  std::uint64_t start_ns = 0;  ///< timestamp when the body began
  std::uint64_t end_ns = 0;    ///< timestamp when the body finished
  std::uint64_t seq = 0;       ///< global completion order (engine-assigned)
};

/// One synchronization operation on a data object, recorded by the engines
/// when Config::collect_sync is set. An ACQUIRE is the completion of a
/// dependency wait (RIO's get_read/get_write, COOR's ready dispatch); a
/// RELEASE is the publication that lets successors through (terminate_*,
/// successor release). `stamp` is drawn from one global atomic counter such
/// that every release an acquire observed carries a smaller stamp — the
/// total order the happens-before checker (src/analysis) replays.
enum class SyncKind : std::uint8_t { kAcquire, kRelease };

struct SyncEvent {
  TaskId task = kInvalidTask;
  WorkerId worker = kInvalidWorker;
  DataId data = kInvalidData;
  AccessMode mode = AccessMode::kRead;
  SyncKind kind = SyncKind::kAcquire;
  std::uint64_t stamp = 0;  ///< global publication/acquisition order
};

/// A full-run synchronization trace: acquire/release events in arbitrary
/// order (consumers sort by stamp).
class SyncTrace {
 public:
  void record(SyncEvent ev) { events_.push_back(ev); }
  void reserve(std::size_t n) { events_.reserve(n); }
  [[nodiscard]] const std::vector<SyncEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<SyncEvent> events_;
};

/// Outcome of validating a trace; `ok()` plus a human-readable reason.
struct ValidationResult {
  bool valid = true;
  std::string reason;

  /// False when the engine recorded no timestamps: the data-race and
  /// dependency-order checks were SKIPPED, not passed. `reason` then says
  /// "timestamps unavailable". Structural checks (completeness, per-worker
  /// order) still ran.
  bool timing_checked = true;

  [[nodiscard]] bool ok() const noexcept { return valid; }

  /// True only when validation passed AND nothing was skipped.
  [[nodiscard]] bool fully_checked() const noexcept {
    return valid && timing_checked;
  }

  static ValidationResult failure(std::string why) {
    return {false, std::move(why), true};
  }
};

/// A full-run trace: one event per task, in arbitrary order.
class Trace {
 public:
  void record(TraceEvent ev) { events_.push_back(ev); }
  void reserve(std::size_t n) { events_.reserve(n); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Checks completeness (every task executed exactly once), sequential
  /// consistency against `graph` (every predecessor finished before its
  /// successor started, using the start/end timestamps), in-order execution
  /// per worker when `require_worker_in_order` is set (the RunInOrder
  /// model's extra constraint), and data-race freedom (no two conflicting
  /// tasks with overlapping [start,end) intervals).
  [[nodiscard]] ValidationResult validate(const TaskFlow& flow,
                                          const DependencyGraph& graph,
                                          bool require_worker_in_order) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace rio::stf
