#include "stf/trace_export.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "support/json.hpp"

namespace rio::stf {
namespace {

std::uint64_t earliest_start(const Trace& trace) {
  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (const TraceEvent& ev : trace.events()) t0 = std::min(t0, ev.start_ns);
  return trace.size() ? t0 : 0;
}

}  // namespace

void export_chrome_trace(const Trace& trace, const TaskFlow& flow,
                         std::ostream& os) {
  const std::uint64_t t0 = earliest_start(trace);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : trace.events()) {
    const std::string& name =
        ev.task < flow.num_tasks() ? flow.task(ev.task).name : std::string();
    if (!first) os << ",";
    first = false;
    os << "{\"name\":"
       << support::json_quote(name.empty() ? "task " + std::to_string(ev.task)
                                           : name)
       << ",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.worker
       << ",\"ts\":" << static_cast<double>(ev.start_ns - t0) / 1e3
       << ",\"dur\":" << static_cast<double>(ev.end_ns - ev.start_ns) / 1e3
       << ",\"args\":{\"task_id\":" << ev.task << ",\"seq\":" << ev.seq
       << "}}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
}

void export_csv(const Trace& trace, const TaskFlow& flow, std::ostream& os) {
  os << "task,name,worker,start_ns,end_ns,duration_ns,seq\n";
  for (const TraceEvent& ev : trace.events()) {
    const std::string& name =
        ev.task < flow.num_tasks() ? flow.task(ev.task).name : std::string();
    os << ev.task << "," << support::csv_quote(name) << "," << ev.worker
       << "," << ev.start_ns
       << "," << ev.end_ns << "," << (ev.end_ns - ev.start_ns) << ","
       << ev.seq << "\n";
  }
}

std::vector<WorkerUtilization> summarize_utilization(const Trace& trace) {
  std::vector<WorkerUtilization> out;
  std::vector<std::uint64_t> first_start, last_end;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.worker >= out.size()) {
      out.resize(ev.worker + 1);
      first_start.resize(ev.worker + 1,
                         std::numeric_limits<std::uint64_t>::max());
      last_end.resize(ev.worker + 1, 0);
    }
    auto& u = out[ev.worker];
    ++u.tasks;
    u.busy_ns += ev.end_ns - ev.start_ns;
    first_start[ev.worker] = std::min(first_start[ev.worker], ev.start_ns);
    last_end[ev.worker] = std::max(last_end[ev.worker], ev.end_ns);
  }
  for (std::size_t w = 0; w < out.size(); ++w) {
    out[w].worker = static_cast<WorkerId>(w);
    out[w].span_ns =
        last_end[w] > first_start[w] ? last_end[w] - first_start[w] : 0;
  }
  return out;
}

}  // namespace rio::stf
