// Completion frontier — the run checkpoint (docs/robustness.md "worker
// loss and recovery").
//
// A CompletionBoard is a per-task done bitmap shared by all workers of a
// run: a worker sets its task's bit AFTER the body succeeded and BEFORE
// publishing the protocol terminate — a set bit therefore guarantees the
// task's data effects are present in the registry. The bitmap is exact
// (one relaxed fetch_or per completed task, off every wait path); only the
// aggregate completed COUNT is sampled, each worker flushing a private
// pending counter every `sample_every` completions so the fault-free path
// never contends on a shared counter.
//
// A Frontier is the captured value: what a supervisor resumes from after
// evicting a dead worker. Tasks with their bit set are replayed as
// protocol no-ops (deps pre-marked, body skipped); everything else
// re-executes. Exactness of the bitmap matters — fold/reduction bodies
// are not idempotent, so "done" may never over-approximate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rio::stf {

/// Captured completion frontier: a plain value, safe to copy and to read
/// while a new attempt runs against a fresh CompletionBoard.
struct Frontier {
  std::vector<std::uint64_t> bits;  ///< done bitmap, task-id order
  std::uint64_t base = 0;           ///< first task id covered (image base)
  std::uint64_t num_tasks = 0;      ///< tasks covered
  std::uint64_t completed = 0;      ///< exact popcount of `bits`

  /// True when `task` (a global task id) completed before the capture.
  [[nodiscard]] bool done(std::uint64_t task) const noexcept {
    if (task < base || task - base >= num_tasks) return false;
    const std::uint64_t i = task - base;
    return (bits[i >> 6] >> (i & 63)) & 1ULL;
  }

  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return num_tasks - completed;
  }
  [[nodiscard]] bool empty() const noexcept { return completed == 0; }
};

/// The live checkpoint a run writes into. Sized once by the supervisor (or
/// any caller that wants resumability), then shared by all workers.
class CompletionBoard {
 public:
  CompletionBoard() = default;

  /// (Re)sizes for `num_tasks` tasks starting at id `base`, keeping any
  /// bits already recorded for the same span — a resumed attempt keeps
  /// accumulating into the same board.
  void reset(std::uint64_t base, std::uint64_t num_tasks,
             std::uint32_t sample_every = kDefaultSampleEvery) {
    const std::size_t words = (num_tasks + 63) / 64;
    if (words != bits_.size() || base != base_)
      bits_ = std::vector<std::atomic<std::uint64_t>>(words);
    base_ = base;
    num_tasks_ = num_tasks;
    sample_every_ = sample_every > 0 ? sample_every : 1;
  }

  /// Forgets all recorded completions (fresh run of the same image).
  void clear() noexcept {
    for (auto& w : bits_) w.store(0, std::memory_order_relaxed);
    sampled_completed_.store(0, std::memory_order_relaxed);
  }

  /// Records `task` (global id) as done. Call after the body succeeded,
  /// before the protocol terminate — and never for replayed tasks.
  void mark(std::uint64_t task) noexcept {
    if (task < base_ || task - base_ >= num_tasks_) return;
    const std::uint64_t i = task - base_;
    bits_[i >> 6].fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Per-worker sampled progress: cheap local counter, one shared RMW per
  /// `sample_every` completions. Purely informational (progress display,
  /// checkpoint cadence) — capture() popcounts the exact bitmap.
  void note_completion(std::uint32_t& pending) noexcept {
    if (++pending >= sample_every_) {
      sampled_completed_.fetch_add(pending, std::memory_order_relaxed);
      pending = 0;
    }
  }

  /// Snapshot of the current frontier with an exact completed count.
  [[nodiscard]] Frontier capture() const {
    Frontier f;
    f.base = base_;
    f.num_tasks = num_tasks_;
    f.bits.reserve(bits_.size());
    for (const auto& w : bits_) {
      const std::uint64_t v = w.load(std::memory_order_relaxed);
      f.bits.push_back(v);
      f.completed += static_cast<std::uint64_t>(__builtin_popcountll(v));
    }
    return f;
  }

  [[nodiscard]] std::uint64_t sampled_completed() const noexcept {
    return sampled_completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t num_tasks() const noexcept { return num_tasks_; }
  [[nodiscard]] std::uint32_t sample_every() const noexcept {
    return sample_every_;
  }

  static constexpr std::uint32_t kDefaultSampleEvery = 64;

 private:
  std::vector<std::atomic<std::uint64_t>> bits_;
  std::atomic<std::uint64_t> sampled_completed_{0};
  std::uint64_t base_ = 0;
  std::uint64_t num_tasks_ = 0;
  std::uint32_t sample_every_ = kDefaultSampleEvery;
};

}  // namespace rio::stf
