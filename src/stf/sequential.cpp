#include "stf/sequential.hpp"

#include "support/clock.hpp"

namespace rio::stf {
namespace {

/// Shared in-order walk: `get_task(i)` yields task i of `n`, bodies run on
/// the calling thread against `registry`.
template <typename GetTask>
support::RunStats run_in_order(std::size_t n, const DataRegistry& registry,
                               GetTask&& get_task) {
  support::RunStats stats;
  stats.workers.resize(1);
  support::WorkerStats& w = stats.workers[0];

  const std::uint64_t begin = support::monotonic_ns();
  for (std::size_t i = 0; i < n; ++i) {
    const Task& task = get_task(i);
    if (!task.fn) continue;  // cost-only task: nothing to execute
    TaskContext ctx(task, registry, /*worker=*/0);
    const std::uint64_t t0 = support::monotonic_ns();
    task.fn(ctx);
    w.buckets.task_ns += support::monotonic_ns() - t0;
    ++w.tasks_executed;
  }
  stats.wall_ns = support::monotonic_ns() - begin;
  // Everything that was not task body is loop/bookkeeping overhead.
  // (Saturating: per-task clock granularity can make the sum overshoot.)
  w.buckets.runtime_ns =
      stats.wall_ns > w.buckets.task_ns ? stats.wall_ns - w.buckets.task_ns : 0;
  return stats;
}

}  // namespace

support::RunStats SequentialExecutor::run(const TaskFlow& flow) const {
  const auto& tasks = flow.tasks();
  return run_in_order(tasks.size(), flow.registry(),
                      [&](std::size_t i) -> const Task& { return tasks[i]; });
}

support::RunStats SequentialExecutor::run(const FlowImage& image) const {
  return run_in_order(image.size(), image.registry(),
                      [&](std::size_t i) -> const Task& {
                        return image.task(i);
                      });
}

}  // namespace rio::stf
