#include "stf/sequential.hpp"

#include "support/clock.hpp"

namespace rio::stf {

support::RunStats SequentialExecutor::run(const TaskFlow& flow) const {
  support::RunStats stats;
  stats.workers.resize(1);
  support::WorkerStats& w = stats.workers[0];

  const std::uint64_t begin = support::monotonic_ns();
  for (const Task& task : flow.tasks()) {
    if (!task.fn) continue;  // cost-only task: nothing to execute
    TaskContext ctx(task, flow.registry(), /*worker=*/0);
    const std::uint64_t t0 = support::monotonic_ns();
    task.fn(ctx);
    w.buckets.task_ns += support::monotonic_ns() - t0;
    ++w.tasks_executed;
  }
  stats.wall_ns = support::monotonic_ns() - begin;
  // Everything that was not task body is loop/bookkeeping overhead.
  // (Saturating: per-task clock granularity can make the sum overshoot.)
  w.buckets.runtime_ns =
      stats.wall_ns > w.buckets.task_ns ? stats.wall_ns - w.buckets.task_ns : 0;
  return stats;
}

}  // namespace rio::stf
