// Data-object registry: the memory the tasks operate on.
//
// A data object is a named region of memory managed by the runtime
// (Section 2.1). The registry either owns the storage (create<T>) or wraps
// user memory (attach<T>), and hands out typed views to task bodies. It is
// built once, before execution, and is strictly read-only metadata during a
// parallel run — only the *contents* of the buffers change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "stf/types.hpp"

namespace rio::stf {

/// Registry of data objects referenced by a task flow.
class DataRegistry {
 public:
  DataRegistry() = default;
  DataRegistry(DataRegistry&&) noexcept = default;
  DataRegistry& operator=(DataRegistry&&) noexcept = default;
  DataRegistry(const DataRegistry&) = delete;
  DataRegistry& operator=(const DataRegistry&) = delete;

  /// Creates a registry-owned, zero-initialized object of `count` Ts.
  template <typename T>
  DataHandle<T> create(std::string name, std::size_t count = 1) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "data objects hold flat HPC payloads");
    Entry e;
    e.name = std::move(name);
    e.bytes = sizeof(T) * count;
    e.owned = std::make_unique<std::byte[]>(e.bytes);
    std::memset(e.owned.get(), 0, e.bytes);
    e.ptr = e.owned.get();
    entries_.push_back(std::move(e));
    return DataHandle<T>{static_cast<DataId>(entries_.size() - 1)};
  }

  /// Creates a registry-owned object WITHOUT the zero-fill (skips the
  /// memset — worthwhile for large scratch buffers). The object carries no
  /// defined initial contents: a task must write it before any task reads
  /// it, which the static analyzer (src/analysis) enforces as RF001.
  template <typename T>
  DataHandle<T> create_uninitialized(std::string name, std::size_t count = 1) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "data objects hold flat HPC payloads");
    Entry e;
    e.name = std::move(name);
    e.bytes = sizeof(T) * count;
    e.owned = std::make_unique<std::byte[]>(e.bytes);
    e.ptr = e.owned.get();
    e.initialized = false;
    entries_.push_back(std::move(e));
    return DataHandle<T>{static_cast<DataId>(entries_.size() - 1)};
  }

  /// Wraps caller-owned memory (e.g. an application matrix tile). The
  /// caller must keep it alive for the lifetime of the registry.
  template <typename T>
  DataHandle<T> attach(std::string name, T* ptr, std::size_t count = 1) {
    Entry e;
    e.name = std::move(name);
    e.bytes = sizeof(T) * count;
    e.ptr = ptr;
    entries_.push_back(std::move(e));
    return DataHandle<T>{static_cast<DataId>(entries_.size() - 1)};
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] const std::string& name(DataId id) const {
    RIO_ASSERT(id < entries_.size());
    return entries_[id].name;
  }

  [[nodiscard]] std::size_t bytes(DataId id) const {
    RIO_ASSERT(id < entries_.size());
    return entries_[id].bytes;
  }

  /// True when the object holds defined contents before the first in-flow
  /// write: zero-filled (create) or caller-supplied (attach). False only
  /// for create_uninitialized objects — reading those before a write is
  /// the uninitialized-read hazard the analyzer flags.
  [[nodiscard]] bool initialized(DataId id) const {
    RIO_ASSERT(id < entries_.size());
    return entries_[id].initialized;
  }

  /// Raw pointer for engine internals; task bodies should go through
  /// TaskContext::get<T> which adds debug-mode checks.
  [[nodiscard]] void* raw(DataId id) const {
    RIO_ASSERT(id < entries_.size());
    return entries_[id].ptr;
  }

  template <typename T>
  [[nodiscard]] T* typed(DataHandle<T> h, std::size_t expect_count = 0) const {
    RIO_ASSERT(h.id < entries_.size());
    const Entry& e = entries_[h.id];
    if (expect_count != 0)
      RIO_ASSERT_MSG(e.bytes == sizeof(T) * expect_count,
                     "typed view size mismatch");
    RIO_DEBUG_ASSERT(e.bytes % sizeof(T) == 0);
    return static_cast<T*>(e.ptr);
  }

 private:
  struct Entry {
    std::string name;
    std::size_t bytes = 0;
    void* ptr = nullptr;
    std::unique_ptr<std::byte[]> owned;  // null when attached
    bool initialized = true;  // false: needs a write before any read
  };

  std::vector<Entry> entries_;
};

/// Byte snapshot of selected data objects — the rollback half of
/// retry-with-rollback (docs/robustness.md). The capture of a task's
/// write/readwrite spans is taken AFTER its dependencies are acquired (the
/// protocol grants the executing worker exclusive write access between
/// get_* and terminate_*), so restore + re-run is race-free and
/// semantically identical to a first execution.
///
/// One arena is reused across captures: steady-state retries allocate
/// nothing once the arena has grown to the largest task's write footprint.
class DataSnapshot {
 public:
  void clear() noexcept {
    saved_.clear();
    arena_.clear();  // keeps capacity
  }

  /// Appends a copy of object `id`'s bytes to the snapshot.
  void add(const DataRegistry& registry, DataId id) {
    const std::size_t bytes = registry.bytes(id);
    const std::size_t offset = arena_.size();
    arena_.resize(offset + bytes);
    std::memcpy(arena_.data() + offset, registry.raw(id), bytes);
    saved_.push_back({id, offset, bytes});
  }

  /// Writes every captured object's bytes back into the registry.
  void restore(const DataRegistry& registry) const {
    for (const Saved& s : saved_)
      std::memcpy(registry.raw(s.id), arena_.data() + s.offset, s.bytes);
  }

  [[nodiscard]] bool empty() const noexcept { return saved_.empty(); }

 private:
  struct Saved {
    DataId id;
    std::size_t offset;
    std::size_t bytes;
  };
  std::vector<Saved> saved_;
  std::vector<std::byte> arena_;
};

}  // namespace rio::stf
