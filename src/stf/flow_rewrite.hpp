// FlowRewriter: the mutable stage between two immutable FlowImages.
//
// A FlowImage is a sealed compilation artifact; the optimization passes in
// src/flowpass need to edit one. The rewriter thaws an image back into a
// std::vector<Task>, lets a pass splice / reorder / replace tasks freely,
// and then compile()s the result into a fresh image that OWNS its task
// vector (FlowImage::compile_owned), inherits the source serial and borrows
// the source registry.
//
// The crucial invariant is that a task BODY must never observe that it was
// moved. Bodies read their descriptor through TaskContext — fold-style
// verification bodies mix ctx.task().id into the bytes they write, and the
// debug access checks compare against ctx.task().accesses. So when
// compile() renumbers a task to its new position, it wraps the body in an
// id-preserving trampoline: the outer Task carries the new id (what engines
// and protocols see), while the body runs against a pristine copy of the
// task as the pass left it (what the program semantics see). Passes that
// synthesize composite tasks (fusion) use the same trick per member.
#pragma once

#include <cstdint>
#include <vector>

#include "stf/flow_image.hpp"
#include "stf/task.hpp"

namespace rio::stf {

class FlowRewriter {
 public:
  /// Thaws `src` into an editable task vector (descriptor copies; bodies are
  /// shared via std::function). The source image's registry must outlive
  /// every image compiled from this rewriter.
  explicit FlowRewriter(const FlowImage& src);

  [[nodiscard]] std::vector<Task>& tasks() noexcept { return tasks_; }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const DataRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] TaskId first_id() const noexcept { return first_; }

  /// Seals the edited vector into a new image: renumbers tasks to
  /// consecutive ids starting at the source's first_id(), trampolining any
  /// body whose visible id changed, and compiles an owned image that
  /// inherits the source serial (fingerprint() tells the rewrites apart).
  [[nodiscard]] FlowImage compile() &&;

  /// Renumbers one task to `new_id`, preserving body semantics: if the id
  /// actually changes and the task has a body, the body is wrapped so it
  /// still executes against the original descriptor (original id, accesses).
  [[nodiscard]] static Task relocate(Task t, TaskId new_id);

 private:
  std::vector<Task> tasks_;
  const DataRegistry* registry_;
  TaskId first_ = 0;
  std::uint64_t serial_ = 0;
};

}  // namespace rio::stf
