// Task descriptor and execution context.
//
// A task is a pure function over its declared data accesses (Section 2.1).
// The descriptor carries everything every engine needs: the body, the
// access list, an optional virtual cost (consumed by the discrete-event
// simulator instead of running the body), and a debug name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "support/inline_vec.hpp"
#include "stf/data_registry.hpp"
#include "stf/types.hpp"

namespace rio::stf {

class TaskContext;

/// Task body signature. The context is the only sanctioned door to data:
/// going through it lets debug builds verify that the body only touches
/// what the task declared.
using TaskFn = std::function<void(TaskContext&)>;

/// Access list with inline storage — no allocation for the 1–3 access
/// tasks that dominate all of the paper's workloads.
using AccessList = support::InlineVec<Access, 4>;

/// Immutable description of one task in a task flow.
struct Task {
  TaskId id = kInvalidTask;
  TaskFn fn;               ///< body; may be empty for cost-only (simulated) tasks
  AccessList accesses;
  std::uint64_t cost = 0;  ///< virtual duration (instructions) for sim engines
  std::int32_t priority = 0;  ///< scheduler hint: larger = run earlier (only
                              ///< the OoO priority scheduler consults it)
  std::string name;        ///< diagnostics only

  /// Mode this task uses on `data`, or nullopt-like kInvalidData sentinel
  /// behaviour: returns false when the task does not touch `data`.
  [[nodiscard]] bool finds_access(DataId data, AccessMode& out) const noexcept {
    for (const Access& a : accesses) {
      if (a.data == data) {
        out = a.mode;
        return true;
      }
    }
    return false;
  }

  /// True when the task declares a write-like access on any data object.
  [[nodiscard]] bool has_write() const noexcept {
    for (const Access& a : accesses)
      if (is_write(a.mode)) return true;
    return false;
  }
};

/// Handed to a running task body; resolves handles to memory and (in debug
/// mode) validates that the task declared the access it performs.
class TaskContext {
 public:
  TaskContext(const Task& task, const DataRegistry& registry,
              WorkerId worker) noexcept
      : task_(task), registry_(registry), worker_(worker) {}

  /// Typed view of a declared data object. Aborts in debug builds when the
  /// task did not declare an access on it, or requests a stronger mode than
  /// declared (writing through a read handle).
  template <typename T>
  T* get(DataHandle<T> h, AccessMode used = AccessMode::kReadWrite) const {
    (void)used;  // consulted by the debug checks only
#ifndef NDEBUG
    AccessMode declared{};
    const bool found = task_.finds_access(h.id, declared);
    RIO_DEBUG_ASSERT(found && "task touches undeclared data");
    if (found) {
      RIO_DEBUG_ASSERT(!(is_write(used) && !is_write(declared)) &&
                       "write through a read-only access");
    }
#endif
    return registry_.typed<T>(h);
  }

  /// Convenience for scalar objects.
  template <typename T>
  T& scalar(DataHandle<T> h, AccessMode used = AccessMode::kReadWrite) const {
    return *get<T>(h, used);
  }

  [[nodiscard]] const Task& task() const noexcept { return task_; }
  [[nodiscard]] TaskId task_id() const noexcept { return task_.id; }
  [[nodiscard]] WorkerId worker() const noexcept { return worker_; }
  [[nodiscard]] const DataRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  const Task& task_;
  const DataRegistry& registry_;
  WorkerId worker_;
};

/// Anything a deterministic STF program can submit tasks into: a TaskFlow
/// (materializes the flow) or a RIO replay context (executes on the fly).
/// This is how the repository supports the paper's true decentralized
/// unrolling — every worker runs the program itself (Section 3.3).
class SubmitSink {
 public:
  virtual ~SubmitSink() = default;

  /// Submits the next task in program order. Implementations assign ids.
  virtual void submit(TaskFn fn, AccessList accesses, std::uint64_t cost = 0,
                      std::string name = {}) = 0;
};

/// A deterministic STF program: must submit the same task sequence on every
/// invocation (assumption 2 of Section 3.4).
using ProgramFn = std::function<void(SubmitSink&)>;

}  // namespace rio::stf
