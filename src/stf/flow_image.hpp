// FlowImage: a compiled, structure-of-arrays image of a task flow.
//
// The paper's cost model (Section 3.4) prices a non-mapped task at "one or
// two writes to private memory" per access — but replaying a
// std::vector<Task> drags every task's std::function body and heap name
// through the cache on each of the p×n unroll steps. A FlowImage is a
// one-shot compilation of a TaskFlow into the densest metadata the unroll
// loop can consume:
//
//   * one flat contiguous Access array for the whole flow;
//   * a parallel {access_begin, access_end} span per task (8 bytes);
//   * parallel cost[] and priority[] arrays for the simulators/schedulers;
//   * names interned into a single character arena (offsets kept out of the
//     hot arrays entirely);
//   * task bodies stay OUT of the image — the cold Task descriptors are
//     reachable via task(i) only when a worker actually executes a body.
//
// Everything lives in ONE arena allocation, so a replay walks two small
// prefetch-friendly arrays instead of ~200-byte Task records. The image is
// immutable after compile() and carries a process-unique serial(), which
// lets downstream caches (rio::rt::PrunedPlanCache) key compiled artifacts
// by identity instead of recomputing per run.
//
// Lifetime: the image BORROWS the source flow's Task array and DataRegistry
// (for bodies and data resolution); the flow must outlive the image. The
// exception is compile_owned(): a rewritten image (flowpass output) OWNS its
// Task vector and only borrows the registry, so optimization pipelines can
// hand images around without keeping every intermediate flow alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "support/assert.hpp"
#include "stf/flow_range.hpp"
#include "stf/task_flow.hpp"
#include "stf/types.hpp"

namespace rio::stf {

class FlowImage {
 public:
  /// Half-open index range [begin, end) into the flat access array.
  struct Span {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  FlowImage() = default;
  FlowImage(FlowImage&&) noexcept = default;
  FlowImage& operator=(FlowImage&&) noexcept = default;
  FlowImage(const FlowImage&) = delete;
  FlowImage& operator=(const FlowImage&) = delete;

  /// Compiles a whole flow. O(n + total accesses + total name bytes).
  [[nodiscard]] static FlowImage compile(const TaskFlow& flow) {
    return FlowImage(FlowRange(flow));
  }

  /// Compiles an arbitrary (sub)range; task ids stay global. The range's
  /// ids must be consecutive (they are for every materialized flow).
  [[nodiscard]] static FlowImage compile(const FlowRange& range) {
    return FlowImage(range);
  }

  /// Compiles an image that OWNS its task vector (the rewriter/flowpass
  /// path). The registry is still borrowed — every rewrite of a flow talks
  /// about the same data objects, so the SOURCE flow's registry must outlive
  /// all derived images. `lineage_serial` carries the source image's serial
  /// forward: all rewrites of one compilation share a serial and are told
  /// apart by fingerprint().
  [[nodiscard]] static FlowImage compile_owned(
      std::shared_ptr<const std::vector<Task>> tasks,
      const DataRegistry& registry, std::uint64_t lineage_serial) {
    RIO_ASSERT(tasks != nullptr);
    FlowImage img{FlowRange(tasks->data(), tasks->size(), registry)};
    img.owned_ = std::move(tasks);
    img.serial_ = lineage_serial;
    return img;
  }

  // -- whole-image observers ------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] std::size_t num_data() const noexcept { return num_data_; }
  [[nodiscard]] const DataRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] TaskId first_id() const noexcept { return first_; }
  [[nodiscard]] std::size_t num_accesses_total() const noexcept {
    return total_acc_;
  }
  [[nodiscard]] std::uint64_t total_cost() const noexcept {
    return total_cost_;
  }

  /// Identity of this compilation LINEAGE (cache key material). Rewritten
  /// images inherit the source image's serial, so downstream caches must
  /// pair it with fingerprint() to tell rewrites apart.
  [[nodiscard]] std::uint64_t serial() const noexcept { return serial_; }

  /// 64-bit content hash of the compiled metadata: task count, first id,
  /// and per-task (cost, priority, name, access list). Two images with the
  /// same serial but different fingerprints are different rewrites of the
  /// same flow; caches key on (serial, fingerprint).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  // -- hot metadata (dense, arena-backed) -----------------------------------

  [[nodiscard]] const Span* spans() const noexcept { return spans_; }
  [[nodiscard]] const Access* accesses() const noexcept { return acc_; }

  [[nodiscard]] TaskId task_id(std::size_t i) const noexcept {
    return first_ + i;
  }
  [[nodiscard]] const Access* acc_begin(std::size_t i) const noexcept {
    return acc_ + spans_[i].begin;
  }
  [[nodiscard]] const Access* acc_end(std::size_t i) const noexcept {
    return acc_ + spans_[i].end;
  }
  [[nodiscard]] std::size_t num_accesses(std::size_t i) const noexcept {
    return spans_[i].end - spans_[i].begin;
  }
  [[nodiscard]] std::uint64_t cost(std::size_t i) const noexcept {
    return costs_[i];
  }
  [[nodiscard]] std::int32_t priority(std::size_t i) const noexcept {
    return prios_[i];
  }

  // -- cold data (touched only when executing / reporting) ------------------

  /// Interned name (empty view for unnamed tasks).
  [[nodiscard]] std::string_view name(std::size_t i) const noexcept {
    return {name_chars_ + name_off_[i], name_off_[i + 1] - name_off_[i]};
  }

  /// The source descriptor — body, full access list. Out of the image's hot
  /// arrays on purpose.
  [[nodiscard]] const Task& task(std::size_t i) const noexcept {
    return src_[i];
  }

 private:
  explicit FlowImage(const FlowRange& range);

  std::unique_ptr<std::byte[]> arena_;
  // Interior pointers into arena_ (fixed after compile).
  const std::uint64_t* costs_ = nullptr;
  const Span* spans_ = nullptr;
  const std::int32_t* prios_ = nullptr;
  const std::uint32_t* name_off_ = nullptr;  // n_ + 1 entries
  const Access* acc_ = nullptr;
  const char* name_chars_ = nullptr;

  const Task* src_ = nullptr;
  const DataRegistry* registry_ = nullptr;
  // Set only by compile_owned(): keeps src_ alive for rewritten images.
  std::shared_ptr<const std::vector<Task>> owned_;
  std::size_t n_ = 0;
  std::size_t num_data_ = 0;
  std::size_t total_acc_ = 0;
  std::uint64_t total_cost_ = 0;
  TaskId first_ = 0;
  std::uint64_t serial_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// A contiguous slice of a FlowImage — the image-world FlowRange. Hybrid
/// phase execution and the simulators consume these; index i is LOCAL to
/// the slice while task_id(i) stays GLOBAL.
class ImageRange {
 public:
  explicit ImageRange(const FlowImage& image)
      : img_(&image), first_(0), count_(image.size()) {}

  ImageRange(const FlowImage& image, std::size_t first, std::size_t count)
      : img_(&image), first_(first), count_(count) {
    RIO_ASSERT(first + count <= image.size());
  }

  [[nodiscard]] const FlowImage& image() const noexcept { return *img_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t num_data() const noexcept {
    return img_->num_data();
  }
  [[nodiscard]] const DataRegistry& registry() const noexcept {
    return img_->registry();
  }
  [[nodiscard]] TaskId first_id() const noexcept {
    return img_->task_id(first_);
  }

  /// Spans of this slice; their begin/end index into accesses_base().
  [[nodiscard]] const FlowImage::Span* spans() const noexcept {
    return img_->spans() + first_;
  }
  /// Image-absolute access array base (spans store absolute indices).
  [[nodiscard]] const Access* accesses_base() const noexcept {
    return img_->accesses();
  }

  [[nodiscard]] TaskId task_id(std::size_t i) const noexcept {
    return img_->task_id(first_ + i);
  }
  [[nodiscard]] const Access* acc_begin(std::size_t i) const noexcept {
    return img_->acc_begin(first_ + i);
  }
  [[nodiscard]] const Access* acc_end(std::size_t i) const noexcept {
    return img_->acc_end(first_ + i);
  }
  [[nodiscard]] std::size_t num_accesses(std::size_t i) const noexcept {
    return img_->num_accesses(first_ + i);
  }
  [[nodiscard]] std::uint64_t cost(std::size_t i) const noexcept {
    return img_->cost(first_ + i);
  }
  [[nodiscard]] std::int32_t priority(std::size_t i) const noexcept {
    return img_->priority(first_ + i);
  }
  [[nodiscard]] const Task& task(std::size_t i) const noexcept {
    return img_->task(first_ + i);
  }

 private:
  const FlowImage* img_;
  std::size_t first_;
  std::size_t count_;
};

}  // namespace rio::stf
