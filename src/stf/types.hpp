// Core vocabulary of the Sequential Task Flow (STF) programming model.
//
// Section 2.1 of the paper: a program is a *task flow* — a sequence of
// tasks, each declaring an access mode (read-only / write-only /
// read-write) on the data objects it touches. Dependencies are implicit:
// they are derived from program order plus access modes, which is what
// gives STF its sequential-consistency guarantee.
#pragma once

#include <cstdint>
#include <limits>

namespace rio::stf {

/// Dense index of a data object within a DataRegistry / TaskFlow.
using DataId = std::uint32_t;

/// Position of a task in the task flow; doubles as the paper's "Task ID"
/// (assumption 1 of Section 3.4: tasks are numbered in control-flow order).
using TaskId = std::uint64_t;

/// Identifier of an execution resource (thread / virtual core).
using WorkerId = std::uint32_t;

inline constexpr DataId kInvalidData = std::numeric_limits<DataId>::max();
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr WorkerId kInvalidWorker = std::numeric_limits<WorkerId>::max();

/// Access mode a task declares on a data object (Section 2.1). ReadWrite
/// synchronizes exactly like Write — it orders after all prior reads and
/// writes — but tells debug validators that the previous value is consumed.
///
/// kReduction extends strict STF with the commutative-update construct the
/// paper attributes to SuperGlue's data versioning (Section 3.4, [21]):
/// consecutive reduction accesses to the same object COMMUTE with each
/// other (an out-of-order engine may run them in any order, one at a time)
/// while ordering like a write against every non-reduction access. The
/// update function must be commutative and associative for the program to
/// stay deterministic. The in-order engines simply run reductions in flow
/// order — a legal (and for RIO, free) ordering.
enum class AccessMode : std::uint8_t {
  kRead,
  kWrite,
  kReadWrite,
  kReduction,
};

/// True when the mode orders like a write for dependency purposes.
/// (Reductions do: they modify the object; their special pairwise
/// commutativity is handled where it matters via is_reduction().)
constexpr bool is_write(AccessMode m) noexcept {
  return m == AccessMode::kWrite || m == AccessMode::kReadWrite ||
         m == AccessMode::kReduction;
}

/// True when the mode observes the previous value.
constexpr bool is_read(AccessMode m) noexcept {
  return m == AccessMode::kRead || m == AccessMode::kReadWrite ||
         m == AccessMode::kReduction;
}

/// True for the commutative-update mode.
constexpr bool is_reduction(AccessMode m) noexcept {
  return m == AccessMode::kReduction;
}

constexpr const char* to_string(AccessMode m) noexcept {
  switch (m) {
    case AccessMode::kRead: return "R";
    case AccessMode::kWrite: return "W";
    case AccessMode::kReadWrite: return "RW";
    case AccessMode::kReduction: return "RED";
  }
  return "?";
}

/// One declared access of a task.
struct Access {
  DataId data = kInvalidData;
  AccessMode mode = AccessMode::kRead;

  friend bool operator==(const Access&, const Access&) = default;
};

/// Typed, copyable handle to a data object. The type parameter only carries
/// compile-time intent: TaskContext::get<T> checks it against the
/// registered object size in debug builds.
template <typename T>
struct DataHandle {
  DataId id = kInvalidData;
  [[nodiscard]] constexpr bool valid() const noexcept {
    return id != kInvalidData;
  }
};

/// Access-declaration helpers so submissions read like the paper's model:
///   flow.submit("gemm", fn, {read(a), read(b), readwrite(c)});
template <typename T>
constexpr Access read(DataHandle<T> h) noexcept {
  return {h.id, AccessMode::kRead};
}
template <typename T>
constexpr Access write(DataHandle<T> h) noexcept {
  return {h.id, AccessMode::kWrite};
}
template <typename T>
constexpr Access readwrite(DataHandle<T> h) noexcept {
  return {h.id, AccessMode::kReadWrite};
}
template <typename T>
constexpr Access reduce(DataHandle<T> h) noexcept {
  return {h.id, AccessMode::kReduction};
}

}  // namespace rio::stf
