// Task-graph exporters: Graphviz DOT and textual summaries.
//
// The mapping work RIO shifts to the programmer (Section 3.2) needs
// tooling: these exporters render a flow's dependency structure so the
// mapping author can see chains, fan-outs and panel shapes. DOT output
// renders with `dot -Tsvg`; the summary gives the quick numbers (tasks,
// edges, width, critical path) the benches report.
#pragma once

#include <ostream>

#include "stf/dependency.hpp"
#include "stf/task_flow.hpp"

namespace rio::stf {

struct DotOptions {
  bool cluster_by_worker = false;  ///< group nodes per mapped worker
  std::size_t max_tasks = 2000;    ///< refuse to render unreadably large DAGs
};

/// Graphviz DOT rendering of the dependency DAG. Node labels use task
/// names (falling back to ids); when `owners` is non-empty and
/// cluster_by_worker is set, nodes are grouped into per-worker clusters.
void export_dot(const TaskFlow& flow, const DependencyGraph& graph,
                std::ostream& os,
                const std::vector<WorkerId>& owners = {},
                const DotOptions& options = {});

/// One-line-per-metric structural summary of a flow.
struct FlowSummary {
  std::size_t tasks = 0;
  std::size_t data_objects = 0;
  std::size_t edges = 0;
  std::size_t max_width = 0;          ///< widest ready level
  std::uint64_t critical_path = 0;    ///< in task-cost units
  std::uint64_t total_cost = 0;
  double avg_accesses_per_task = 0.0;

  /// Parallelism upper bound total_cost / critical_path.
  [[nodiscard]] double parallelism() const noexcept {
    return critical_path > 0 ? static_cast<double>(total_cost) /
                                   static_cast<double>(critical_path)
                             : 1.0;
  }
};

FlowSummary summarize_flow(const TaskFlow& flow, const DependencyGraph& graph);

void print_summary(const FlowSummary& summary, std::ostream& os);

}  // namespace rio::stf
