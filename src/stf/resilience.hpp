// Shared resilient body execution — used by every engine's worker loop.
//
// execute_body() is the one place where fault injection, retry-with-
// rollback and abort awareness meet. The contract:
//
//   1. an injected stall (FaultPlan::stall_*) busy-waits before the body,
//      interruptible by the abort flag (so the watchdog can drain it);
//   2. when retries are enabled, the write/readwrite/reduction spans are
//      snapshotted ONCE before the first attempt — the task already holds
//      protocol exclusivity on them, so the copy is race-free;
//   3. each attempt runs the body, then (if the injector says so) throws an
//      InjectedFault AFTER the body ran — the data really was mutated, so a
//      retry that skipped the rollback would double-apply the body;
//   4. a failed attempt with budget left restores the snapshot, pays the
//      backoff, and re-runs; an exhausted budget returns the error — wrapped
//      in TaskFailure when retries were enabled, verbatim otherwise (the
//      historical fail-fast contract).
//
// Engines keep their zero-overhead inline path when no resilience is
// configured; they call this only when `ResilienceOpts::active()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <utility>

#include "obs/obs.hpp"
#include "support/clock.hpp"
#include "support/fault.hpp"
#include "stf/data_registry.hpp"
#include "stf/failure.hpp"
#include "stf/task.hpp"

namespace rio::stf {

/// Resilience knobs threaded from a runtime Config into the worker loop.
struct ResilienceOpts {
  support::RetryPolicy retry;
  support::FaultInjector* fault = nullptr;  ///< not owned; may be shared
  const std::atomic<bool>* abort = nullptr; ///< watchdog abort flag
  obs::WorkerObs* obs = nullptr;  ///< telemetry lens (null-safe); rollback
                                  ///< spans + fault/retry counters land here

  [[nodiscard]] bool active() const noexcept {
    return fault != nullptr || retry.enabled();
  }
};

/// Outcome of one resilient body execution.
struct BodyResult {
  bool ok = true;
  bool crashed = false;        ///< worker must die: record a DeathRecord
                               ///< (the caller's snapshot holds the dirty
                               ///< spans) and exit the worker loop
  std::uint32_t attempts = 1;  ///< executions performed
  std::exception_ptr error;    ///< set when !ok
};

/// Runs `task`'s body under the resilience contract above. `snapshot` is a
/// caller-owned scratch arena reused across tasks.
inline BodyResult execute_body(const Task& task, const DataRegistry& registry,
                               WorkerId worker, const ResilienceOpts& opts,
                               DataSnapshot& snapshot) {
  BodyResult result;

  if (opts.fault != nullptr) {
    const std::uint64_t stall = opts.fault->stall_ns(task.id);
    if (stall > 0) {
      if (opts.obs != nullptr) {
        opts.obs->count(obs::Counter::kFaultsInjected);
        opts.obs->instant(obs::Phase::kFaultInjected, task.id,
                          support::monotonic_ns());
      }
      support::stall_for(stall, opts.abort);
    }
  }

  const std::uint32_t max_attempts =
      opts.retry.enabled() ? opts.retry.attempts_for(task.id) : 1;
  const bool crash_possible =
      opts.fault != nullptr && opts.fault->plan().crash_armed();
  if (opts.retry.enabled() || crash_possible) {
    // Crash-armed runs snapshot even without retries: a worker death after
    // the body leaves the write set dirty, and the supervisor restores this
    // snapshot (carried out via the DeathRecord) before replaying the task.
    snapshot.clear();
    for (const Access& a : task.accesses)
      if (is_write(a.mode)) snapshot.add(registry, a.data);
  }

  for (std::uint32_t attempt = 1;; ++attempt) {
    result.attempts = attempt;
    std::exception_ptr error;
    try {
      if (task.fn) {
        TaskContext tc(task, registry, worker);
        task.fn(tc);
      }
      if (opts.fault != nullptr && opts.fault->should_throw(task.id, attempt)) {
        if (opts.obs != nullptr) {
          opts.obs->count(obs::Counter::kFaultsInjected);
          opts.obs->instant(obs::Phase::kFaultInjected, task.id,
                            support::monotonic_ns());
        }
        throw support::InjectedFault(task.id, attempt);
      }
      if (crash_possible && opts.fault->should_crash(task.id)) {
        // Permanent worker death: decided AFTER the body (the data really
        // is dirty) and instead of success — the task never publishes its
        // terminate, so dependents block until the watchdog tripwire fires.
        if (opts.obs != nullptr) {
          opts.obs->count(obs::Counter::kFaultsInjected);
          opts.obs->instant(obs::Phase::kFaultInjected, task.id,
                            support::monotonic_ns());
        }
        result.crashed = true;
        return result;
      }
      return result;  // success
    } catch (...) {
      error = std::current_exception();
    }

    const bool aborted =
        opts.abort != nullptr && opts.abort->load(std::memory_order_acquire);
    if (attempt < max_attempts && !aborted) {
      // Cold path: the two clock reads bracket rollback + backoff only when
      // a retry actually happens.
      const std::uint64_t rb0 =
          opts.obs != nullptr ? support::monotonic_ns() : 0;
      snapshot.restore(registry);
      if (opts.retry.backoff_ns > 0)
        support::stall_for(opts.retry.backoff_ns, opts.abort);
      if (opts.obs != nullptr) {
        opts.obs->span(obs::Phase::kRetryRollback, task.id, rb0,
                       support::monotonic_ns());
        opts.obs->count(obs::Counter::kRetries);
      }
      continue;
    }

    result.ok = false;
    if (opts.retry.enabled()) {
      // Terminal failure: restore too, so a failed task has NO effect on
      // its write set (the failed attempt's partial writes don't leak into
      // post-mortem state).
      snapshot.restore(registry);
      FailureReport report;
      report.task = task.id;
      report.name = task.name;
      report.worker = worker;
      report.attempts = attempt;
      result.error = std::make_exception_ptr(
          TaskFailure(std::move(report), std::move(error)));
    } else {
      result.error = std::move(error);
    }
    return result;
  }
}

}  // namespace rio::stf
