// Incremental STF dependency scanner.
//
// The single-pass bookkeeping that turns program order + access modes into
// predecessor sets, shared by the DependencyGraph builder (whole-flow
// analysis) and the centralized runtime's master (incremental discovery —
// the per-task management work of cost model (1)).
//
// Semantics per data object:
//   * a READ depends on the current write frontier;
//   * a WRITE depends on the frontier and on every read since it formed;
//   * a REDUCTION joining an open run (same data, no intervening reads or
//     writes) depends only on what the run itself depended on — members of
//     a run carry NO edges among each other (they commute); any other
//     access after the run depends on all of its members.
//
// The "write frontier" is therefore either the one latest writer or the
// member set of the currently open reduction run.
#pragma once

#include <algorithm>
#include <vector>

#include "stf/task.hpp"
#include "stf/types.hpp"

namespace rio::stf {

class DependencyScanner {
 public:
  explicit DependencyScanner(std::size_t num_data) : data_(num_data) {}

  /// Appends the (deduplicated, ascending) predecessor ids of `task` to
  /// `out`, then folds the task's accesses into the scan state under the
  /// caller-chosen id (global flow id or range-local index — the caller's
  /// indexing space). Tasks must arrive in flow order, ids strictly
  /// increasing.
  void next(const Task& task, TaskId id, std::vector<TaskId>& out) {
    next(task.accesses.begin(), task.accesses.end(), id, out);
  }

  /// Same, over a bare access span — the form the compiled FlowImage
  /// replay feeds (no Task record in sight).
  void next(const Access* begin, const Access* end, TaskId id,
            std::vector<TaskId>& out) {
    out.clear();
    for (const Access* it = begin; it != end; ++it) {
      const Access& a = *it;
      DataState& d = data_[a.data];
      if (is_reduction(a.mode)) {
        if (!(d.frontier_is_reduction && d.readers_since.empty())) {
          // Start a new run: remember what every member must wait for.
          d.pre_run_deps = d.frontier;
          d.pre_run_deps.insert(d.pre_run_deps.end(), d.readers_since.begin(),
                                d.readers_since.end());
          d.frontier.clear();
          d.frontier_is_reduction = true;
          d.readers_since.clear();
        }
        out.insert(out.end(), d.pre_run_deps.begin(), d.pre_run_deps.end());
      } else if (is_write(a.mode)) {
        out.insert(out.end(), d.frontier.begin(), d.frontier.end());
        out.insert(out.end(), d.readers_since.begin(), d.readers_since.end());
      } else {  // plain read
        out.insert(out.end(), d.frontier.begin(), d.frontier.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());

    for (const Access* it = begin; it != end; ++it) {
      const Access& a = *it;
      DataState& d = data_[a.data];
      if (is_reduction(a.mode)) {
        d.frontier.push_back(id);  // joins the (possibly new) run
      } else if (is_write(a.mode)) {
        d.frontier.assign(1, id);
        d.frontier_is_reduction = false;
        d.readers_since.clear();
        d.pre_run_deps.clear();
      } else {
        d.readers_since.push_back(id);
      }
    }
  }

 private:
  struct DataState {
    std::vector<TaskId> frontier;  // latest writer OR open reduction run
    bool frontier_is_reduction = false;
    std::vector<TaskId> readers_since;  // reads since the frontier formed
    std::vector<TaskId> pre_run_deps;   // deps of the open run's members
  };
  std::vector<DataState> data_;
};

}  // namespace rio::stf
