#include "stf/flow_image.hpp"

#include <atomic>
#include <cstring>
#include <limits>

namespace rio::stf {
namespace {

std::uint64_t next_serial() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Bumps `offset` to the next multiple of `align` and returns the aligned
/// offset. All our arrays align to <= 8, and operator new[] hands back
/// max_align_t-aligned storage, so offsets are the only thing to manage.
std::size_t align_up(std::size_t offset, std::size_t align) noexcept {
  return (offset + align - 1) & ~(align - 1);
}

// FNV-1a, 64-bit. Only used for image fingerprints; collisions merely cost
// a redundant plan compile downstream, never correctness.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffU;
    h *= kFnvPrime;
  }
}

void fnv_mix_bytes(std::uint64_t& h, const char* p, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= kFnvPrime;
  }
}

}  // namespace

FlowImage::FlowImage(const FlowRange& range) {
  n_ = range.size();
  num_data_ = range.num_data();
  registry_ = &range.registry();
  src_ = range.begin();
  first_ = n_ > 0 ? range.first_id() : 0;
  serial_ = next_serial();

  // Pass 1: sizes. Ids must be consecutive — true for every materialized
  // flow (a task's id is its position) and required for task_id(i) to be
  // computable without touching the Task record.
  std::size_t name_bytes = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const Task& t = src_[i];
    RIO_ASSERT_MSG(t.id == first_ + i,
                   "FlowImage requires consecutive task ids");
    total_acc_ += t.accesses.size();
    total_cost_ += t.cost;
    name_bytes += t.name.size();
  }
  RIO_ASSERT_MSG(total_acc_ <= std::numeric_limits<std::uint32_t>::max() &&
                     name_bytes <= std::numeric_limits<std::uint32_t>::max(),
                 "flow too large for 32-bit image offsets");

  // Single arena, arrays ordered by descending alignment.
  std::size_t off = 0;
  const std::size_t costs_off = off;
  off += n_ * sizeof(std::uint64_t);
  const std::size_t spans_off = align_up(off, alignof(Span));
  off = spans_off + n_ * sizeof(Span);
  const std::size_t prios_off = align_up(off, alignof(std::int32_t));
  off = prios_off + n_ * sizeof(std::int32_t);
  const std::size_t name_off_off = align_up(off, alignof(std::uint32_t));
  off = name_off_off + (n_ + 1) * sizeof(std::uint32_t);
  const std::size_t acc_off = align_up(off, alignof(Access));
  off = acc_off + total_acc_ * sizeof(Access);
  const std::size_t chars_off = off;
  off += name_bytes;

  arena_ = std::make_unique<std::byte[]>(off > 0 ? off : 1);
  std::byte* base = arena_.get();
  auto* costs = reinterpret_cast<std::uint64_t*>(base + costs_off);
  auto* spans = reinterpret_cast<Span*>(base + spans_off);
  auto* prios = reinterpret_cast<std::int32_t*>(base + prios_off);
  auto* name_off = reinterpret_cast<std::uint32_t*>(base + name_off_off);
  auto* acc = reinterpret_cast<Access*>(base + acc_off);
  auto* chars = reinterpret_cast<char*>(base + chars_off);

  // Pass 2: fill, hashing the content as it streams by. The fingerprint
  // covers everything an engine's plan can depend on: position, cost,
  // priority, name and the full access list.
  std::uint64_t fp = kFnvOffset;
  fnv_mix(fp, n_);
  fnv_mix(fp, first_);
  std::uint32_t acc_cursor = 0;
  std::uint32_t char_cursor = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    const Task& t = src_[i];
    costs[i] = t.cost;
    prios[i] = t.priority;
    spans[i].begin = acc_cursor;
    for (const Access& a : t.accesses) acc[acc_cursor++] = a;
    spans[i].end = acc_cursor;
    name_off[i] = char_cursor;
    if (!t.name.empty()) {
      std::memcpy(chars + char_cursor, t.name.data(), t.name.size());
      char_cursor += static_cast<std::uint32_t>(t.name.size());
    }
    fnv_mix(fp, t.cost);
    fnv_mix(fp, static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.priority)));
    fnv_mix_bytes(fp, t.name.data(), t.name.size());
    for (const Access& a : t.accesses) {
      fnv_mix(fp, a.data);
      fnv_mix(fp, static_cast<std::uint64_t>(a.mode));
    }
  }
  name_off[n_] = char_cursor;
  fingerprint_ = fp;

  costs_ = costs;
  spans_ = spans;
  prios_ = prios;
  name_off_ = name_off;
  acc_ = acc;
  name_chars_ = chars;
}

}  // namespace rio::stf
