// Dependency analysis: from implicit STF order to an explicit DAG.
//
// Sequential consistency (Section 2.1) requires every read to happen after
// all earlier writes to the same data, and every write after all earlier
// reads *and* writes. Scanning the flow once with per-data last-writer /
// readers-since-write state yields the exact dependency DAG. The DAG is
// what the centralized OoO runtime schedules from, what the simulator
// replays, and what the trace validator checks executions against — RIO
// itself never materializes it (that is the whole point of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "stf/flow_range.hpp"
#include "stf/task_flow.hpp"
#include "stf/types.hpp"

namespace rio::stf {

class ImageRange;  // flow_image.hpp

/// Explicit task DAG derived from a flow. Edges point from a task to the
/// tasks that must wait for it (predecessor -> successor). When built from
/// a FlowRange, node indices are positions WITHIN the range.
class DependencyGraph {
 public:
  /// Scans `flow` once (O(tasks + edges)) and builds the DAG.
  explicit DependencyGraph(const TaskFlow& flow)
      : DependencyGraph(FlowRange(flow)) {}

  /// Range variant: dependencies are derived within the range only (the
  /// hybrid phase barrier guarantees everything before it is complete).
  explicit DependencyGraph(const FlowRange& range);

  /// Compiled-image variant: identical DAG, built from the image's flat
  /// access array without touching any Task record.
  explicit DependencyGraph(const ImageRange& range);

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return preds_.size();
  }

  /// Direct predecessors (deduplicated, ascending TaskId).
  [[nodiscard]] const std::vector<TaskId>& predecessors(TaskId t) const {
    return preds_[t];
  }

  /// Direct successors (ascending TaskId).
  [[nodiscard]] const std::vector<TaskId>& successors(TaskId t) const {
    return succs_[t];
  }

  [[nodiscard]] std::size_t in_degree(TaskId t) const {
    return preds_[t].size();
  }

  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Length (sum of task costs) of the longest dependency chain; the
  /// virtual-time lower bound on any schedule's makespan. Tasks with zero
  /// cost count as cost 1 so the chain length is still meaningful.
  [[nodiscard]] std::uint64_t critical_path_cost(const TaskFlow& flow) const {
    return critical_path_cost(FlowRange(flow));
  }
  [[nodiscard]] std::uint64_t critical_path_cost(const FlowRange& range) const;

  /// Bottom level of every task: length (in task costs, >= 1 each) of the
  /// longest dependency chain STARTING at the task. The classic critical-
  /// path list-scheduling priority: tasks on long chains first.
  [[nodiscard]] std::vector<std::uint64_t> bottom_levels(
      const TaskFlow& flow) const;

  /// Width proxy: maximum number of tasks with no unfinished predecessors
  /// when tasks complete in topological order (a cheap parallelism gauge
  /// used by tests and workload diagnostics).
  [[nodiscard]] std::size_t max_ready_width() const;

 private:
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
  std::size_t num_edges_ = 0;
};

}  // namespace rio::stf
