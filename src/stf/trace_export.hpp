// Trace exporters.
//
// The paper's methodology avoids trace dumping during fine-grained runs
// (Section 5.1) — our engines follow that and only record in-memory events
// when asked. Once a run is over, these exporters turn the trace into
// artifacts: the Chrome trace-event JSON format (open in
// chrome://tracing or Perfetto) for visual inspection of worker
// timelines, and a flat CSV for scripted analysis.
#pragma once

#include <ostream>

#include "stf/task_flow.hpp"
#include "stf/trace.hpp"

namespace rio::stf {

/// Chrome trace-event JSON ("X" complete events, one row per worker).
/// `flow` provides task names; timestamps are rebased to the earliest
/// event and converted to microseconds as the format expects.
void export_chrome_trace(const Trace& trace, const TaskFlow& flow,
                         std::ostream& os);

/// Flat CSV: task,name,worker,start_ns,end_ns,duration_ns,seq.
void export_csv(const Trace& trace, const TaskFlow& flow, std::ostream& os);

/// Per-worker utilization summary derived from a trace: busy time between
/// each worker's first start and last end. Returns rows of
/// (worker, tasks, busy_ns, span_ns).
struct WorkerUtilization {
  WorkerId worker = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t span_ns = 0;

  [[nodiscard]] double utilization() const noexcept {
    return span_ns > 0
               ? static_cast<double>(busy_ns) / static_cast<double>(span_ns)
               : 1.0;
  }
};
std::vector<WorkerUtilization> summarize_utilization(const Trace& trace);

}  // namespace rio::stf
