// TaskFlow: a materialized STF program.
//
// The flow is built once by the application (or by replaying a ProgramFn)
// and is immutable during execution, so every engine — sequential
// reference, RIO, centralized OoO, simulator — can share one instance
// without synchronization. Tasks are stored in submission order; their
// index *is* their Task ID (paper Section 3.4, assumption 1).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stf/data_registry.hpp"
#include "stf/task.hpp"
#include "stf/types.hpp"

namespace rio::stf {

/// Builder + container for an STF program and its data objects.
class TaskFlow final : public SubmitSink {
 public:
  TaskFlow() = default;
  TaskFlow(TaskFlow&&) noexcept = default;
  TaskFlow& operator=(TaskFlow&&) noexcept = default;
  TaskFlow(const TaskFlow&) = delete;
  TaskFlow& operator=(const TaskFlow&) = delete;

  // -- data objects ---------------------------------------------------------

  template <typename T>
  DataHandle<T> create_data(std::string name, std::size_t count = 1) {
    return registry_.create<T>(std::move(name), count);
  }

  template <typename T>
  DataHandle<T> create_uninitialized_data(std::string name,
                                          std::size_t count = 1) {
    return registry_.create_uninitialized<T>(std::move(name), count);
  }

  template <typename T>
  DataHandle<T> attach_data(std::string name, T* ptr, std::size_t count = 1) {
    return registry_.attach<T>(std::move(name), ptr, count);
  }

  // -- tasks ----------------------------------------------------------------

  /// SubmitSink interface: appends the next task; its id is its position.
  void submit(TaskFn fn, AccessList accesses, std::uint64_t cost = 0,
              std::string name = {}) override {
    Task t;
    t.id = static_cast<TaskId>(tasks_.size());
    t.fn = std::move(fn);
    t.accesses = std::move(accesses);
    t.cost = cost;
    t.name = std::move(name);
    tasks_.push_back(std::move(t));
  }

  /// Convenience overload with the name first, reading like the paper:
  ///   flow.add("getrf(0,0)", body, {readwrite(a00)});
  void add(std::string name, TaskFn fn, AccessList accesses,
           std::uint64_t cost = 0) {
    submit(std::move(fn), std::move(accesses), cost, std::move(name));
  }

  /// Cost-only task for simulator-driven experiments: no body, just a
  /// virtual duration and an access signature.
  void add_virtual(std::uint64_t cost, AccessList accesses,
                   std::string name = {}) {
    submit(TaskFn{}, std::move(accesses), cost, std::move(name));
  }

  /// Materializes a deterministic program into this flow.
  static TaskFlow from_program(const ProgramFn& program) {
    TaskFlow flow;
    program(flow);
    return flow;
  }

  // -- observers ------------------------------------------------------------

  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::size_t num_data() const noexcept {
    return registry_.size();
  }
  [[nodiscard]] const Task& task(TaskId id) const {
    RIO_ASSERT(id < tasks_.size());
    return tasks_[id];
  }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const DataRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] DataRegistry& registry() noexcept { return registry_; }

  /// Sets the scheduler priority hint of a task (see Task::priority).
  void set_priority(TaskId id, std::int32_t priority) {
    RIO_ASSERT(id < tasks_.size());
    tasks_[id].priority = priority;
  }

  /// Total virtual cost of all tasks (simulator workloads).
  [[nodiscard]] std::uint64_t total_cost() const noexcept {
    std::uint64_t c = 0;
    for (const Task& t : tasks_) c += t.cost;
    return c;
  }

 private:
  DataRegistry registry_;
  std::vector<Task> tasks_;
};

}  // namespace rio::stf
