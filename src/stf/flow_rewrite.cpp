#include "stf/flow_rewrite.hpp"

#include <memory>
#include <utility>

namespace rio::stf {

FlowRewriter::FlowRewriter(const FlowImage& src)
    : registry_(&src.registry()),
      first_(src.first_id()),
      serial_(src.serial()) {
  tasks_.reserve(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) tasks_.push_back(src.task(i));
}

Task FlowRewriter::relocate(Task t, TaskId new_id) {
  if (t.id == new_id) return t;
  if (!t.fn) {
    t.id = new_id;
    return t;
  }
  // Pristine copy BEFORE mutating: the body keeps seeing the descriptor the
  // pass authored (original id, access list), no matter where the task
  // lands in the rewritten flow.
  auto original = std::make_shared<const Task>(t);
  t.fn = [original](TaskContext& ctx) {
    TaskContext sub(*original, ctx.registry(), ctx.worker());
    original->fn(sub);
  };
  t.id = new_id;
  return t;
}

FlowImage FlowRewriter::compile() && {
  auto out = std::make_shared<std::vector<Task>>(std::move(tasks_));
  for (std::size_t i = 0; i < out->size(); ++i) {
    (*out)[i] = relocate(std::move((*out)[i]), first_ + i);
  }
  return FlowImage::compile_owned(
      std::shared_ptr<const std::vector<Task>>(std::move(out)), *registry_,
      serial_);
}

}  // namespace rio::stf
