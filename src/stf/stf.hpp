// Umbrella header for the STF programming-model layer.
#pragma once

#include "stf/access_guard.hpp"    // IWYU pragma: export
#include "stf/data_registry.hpp"   // IWYU pragma: export
#include "stf/dependency.hpp"      // IWYU pragma: export
#include "stf/failure.hpp"         // IWYU pragma: export
#include "stf/frontier.hpp"        // IWYU pragma: export
#include "stf/resilience.hpp"      // IWYU pragma: export
#include "stf/sequential.hpp"      // IWYU pragma: export
#include "stf/task.hpp"            // IWYU pragma: export
#include "stf/task_flow.hpp"       // IWYU pragma: export
#include "stf/flow_image.hpp"      // IWYU pragma: export
#include "stf/flow_range.hpp"      // IWYU pragma: export
#include "stf/graph_export.hpp"    // IWYU pragma: export
#include "stf/trace.hpp"           // IWYU pragma: export
#include "stf/trace_export.hpp"    // IWYU pragma: export
#include "stf/types.hpp"           // IWYU pragma: export
