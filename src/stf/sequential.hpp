// Sequential reference executor.
//
// The simplest execution model that satisfies STF: run the tasks one by one
// in flow order (Section 2.2 calls this out as semantically correct but a
// poor use of a parallel machine). It is the correctness oracle for every
// other engine — any valid parallel execution must leave the data objects
// bitwise identical to this executor's result — and it measures t(g), the
// sequential time at granularity g, needed by the efficiency decomposition.
#pragma once

#include "support/stats.hpp"
#include "stf/flow_image.hpp"
#include "stf/task_flow.hpp"

namespace rio::stf {

class SequentialExecutor {
 public:
  /// Runs every task of `flow` in order on the calling thread. Returns
  /// single-worker RunStats (all time is either task or runtime bucket).
  support::RunStats run(const TaskFlow& flow) const;

  /// Image replay (stf/flow_image.hpp): same in-order walk over a compiled
  /// image — what the engine::Registry's "seq" backend executes.
  support::RunStats run(const FlowImage& image) const;
};

}  // namespace rio::stf
