#include "stf/graph_export.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace rio::stf {
namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"') out += "\\\"";
    else out += c;
  }
  return out;
}

std::string node_label(const TaskFlow& flow, TaskId t) {
  const std::string& name = flow.task(t).name;
  return name.empty() ? "t" + std::to_string(t) : dot_escape(name);
}

}  // namespace

void export_dot(const TaskFlow& flow, const DependencyGraph& graph,
                std::ostream& os, const std::vector<WorkerId>& owners,
                const DotOptions& options) {
  const std::size_t n = flow.num_tasks();
  os << "digraph taskflow {\n  rankdir=TB;\n  node [shape=box];\n";
  if (n > options.max_tasks) {
    os << "  // flow has " << n << " tasks (> " << options.max_tasks
       << "); rendering suppressed\n}\n";
    return;
  }

  if (options.cluster_by_worker && !owners.empty()) {
    // Bucket tasks per owner, emit one cluster per worker. Unmapped tasks
    // (kInvalidWorker) are excluded from the cluster count.
    WorkerId max_w = 0;
    for (WorkerId w : owners)
      if (w != kInvalidWorker) max_w = std::max(max_w, w);
    for (WorkerId w = 0; w <= max_w; ++w) {
      os << "  subgraph cluster_w" << w << " {\n    label=\"worker " << w
         << "\";\n";
      for (TaskId t = 0; t < n; ++t)
        if (t < owners.size() && owners[t] == w)
          os << "    t" << t << " [label=\"" << node_label(flow, t)
             << "\"];\n";
      os << "  }\n";
    }
    // Unmapped tasks outside clusters.
    for (TaskId t = 0; t < n; ++t)
      if (t >= owners.size() || owners[t] == kInvalidWorker)
        os << "  t" << t << " [label=\"" << node_label(flow, t)
           << "\", style=dashed];\n";
  } else {
    for (TaskId t = 0; t < n; ++t)
      os << "  t" << t << " [label=\"" << node_label(flow, t) << "\"];\n";
  }

  for (TaskId t = 0; t < n; ++t)
    for (TaskId s : graph.successors(t)) os << "  t" << t << " -> t" << s << ";\n";
  os << "}\n";
}

FlowSummary summarize_flow(const TaskFlow& flow,
                           const DependencyGraph& graph) {
  FlowSummary s;
  s.tasks = flow.num_tasks();
  s.data_objects = flow.num_data();
  s.edges = graph.num_edges();
  s.max_width = graph.max_ready_width();
  s.critical_path = graph.critical_path_cost(flow);
  s.total_cost = flow.total_cost();
  std::size_t accesses = 0;
  for (const Task& t : flow.tasks()) accesses += t.accesses.size();
  s.avg_accesses_per_task =
      s.tasks > 0 ? static_cast<double>(accesses) / static_cast<double>(s.tasks)
                  : 0.0;
  return s;
}

void print_summary(const FlowSummary& s, std::ostream& os) {
  os << "tasks:             " << s.tasks << "\n"
     << "data objects:      " << s.data_objects << "\n"
     << "dependency edges:  " << s.edges << "\n"
     << "max ready width:   " << s.max_width << "\n"
     << "critical path:     " << s.critical_path << "\n"
     << "total cost:        " << s.total_cost << "\n"
     << "avg accesses/task: " << s.avg_accesses_per_task << "\n"
     << "parallelism bound: " << s.parallelism() << "\n";
}

}  // namespace rio::stf
