// Runtime data-race detector for real-thread executions.
//
// The STF specification (Appendix B.1) defines data-race freedom as: no two
// concurrently-active tasks access the same data with at least one write.
// This guard enforces exactly that invariant dynamically. Each data object
// carries one atomic word encoding (writer-active bit | reader count); a
// runtime acquires all of a task's accesses before running the body and
// releases them after. Any violation aborts with a diagnostic.
//
// The guard is how the test suite turns every stress test into a race
// detector without TSan: if a runtime ever schedules two conflicting tasks
// concurrently, the acquire fails deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/align.hpp"
#include "support/assert.hpp"
#include "stf/types.hpp"

namespace rio::stf {

/// Per-data-object concurrent access bookkeeping. Enabled explicitly by
/// tests/examples; engines skip all guard work when disabled so benches
/// measure the bare protocol.
class AccessGuard {
  static constexpr std::uint32_t kWriterBit = 0x8000'0000u;

 public:
  AccessGuard() = default;

  /// Sizes the guard for `num_data` objects and arms it.
  void enable(std::size_t num_data) {
    words_ = std::vector<support::AlignedAtomic<std::uint32_t>>(num_data);
    enabled_ = true;
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Declares that a task holding `access` begins executing.
  void acquire(const Access& access) noexcept {
    if (!enabled_) return;
    auto& w = words_[access.data].value;
    if (is_write(access.mode)) {
      const std::uint32_t prev = w.fetch_or(kWriterBit, std::memory_order_acq_rel);
      RIO_ASSERT_MSG(prev == 0,
                     "data race: write access while data is in use");
    } else {
      const std::uint32_t prev = w.fetch_add(1, std::memory_order_acq_rel);
      RIO_ASSERT_MSG((prev & kWriterBit) == 0,
                     "data race: read access while a writer is active");
    }
  }

  /// Declares that the task holding `access` finished executing.
  void release(const Access& access) noexcept {
    if (!enabled_) return;
    auto& w = words_[access.data].value;
    if (is_write(access.mode)) {
      const std::uint32_t prev =
          w.fetch_and(~kWriterBit, std::memory_order_acq_rel);
      RIO_ASSERT_MSG((prev & kWriterBit) != 0, "unbalanced writer release");
    } else {
      const std::uint32_t prev = w.fetch_sub(1, std::memory_order_acq_rel);
      RIO_ASSERT_MSG((prev & ~kWriterBit) != 0, "unbalanced reader release");
    }
  }

 private:
  std::vector<support::AlignedAtomic<std::uint32_t>> words_;
  bool enabled_ = false;
};

}  // namespace rio::stf
