// Structured failure vocabulary of the resilience layer.
//
// Two terminal outcomes exist beyond a plain body exception:
//   * TaskFailure — a task exhausted its RetryPolicy. Carries a
//     FailureReport (which task, where, how many attempts) plus the last
//     underlying exception, so callers can triage without string parsing.
//   * StallError — the progress watchdog detected a no-progress window and
//     aborted the run. Carries the per-worker diagnostic captured at the
//     moment of the stall.
//   * WorkerLost — one or more workers died permanently (injected crash
//     fault or wedged-beyond-recovery). Carries a DeathRecord per victim,
//     including the dirty write-span snapshot of the task it died inside,
//     so a supervisor can restore consistency and resume from the
//     completion frontier (stf/frontier.hpp).
//
// When retries are DISABLED the engines keep their historical contract and
// rethrow the original body exception unwrapped — existing error handling
// (and tests) see exactly what they always saw.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "stf/data_registry.hpp"
#include "stf/types.hpp"

namespace rio::stf {

/// What the runtime knows about a terminally-failed task.
struct FailureReport {
  TaskId task = kInvalidTask;
  std::string name;             ///< Task::name (may be empty)
  WorkerId worker = kInvalidWorker;
  std::uint32_t attempts = 0;   ///< executions performed (>= 1)
};

namespace detail {
inline std::string describe_failure(const FailureReport& r,
                                    const std::exception_ptr& cause) {
  std::string s = "task " + std::to_string(r.task);
  if (!r.name.empty()) s += " '" + r.name + "'";
  s += " failed on worker " + std::to_string(r.worker) + " after " +
       std::to_string(r.attempts) + " attempt(s)";
  if (cause) {
    try {
      std::rethrow_exception(cause);
    } catch (const std::exception& e) {
      s += std::string(": ") + e.what();
    } catch (...) {
      s += ": non-standard exception";
    }
  }
  return s;
}
}  // namespace detail

/// Raised when a task exhausted its retry budget. Replaces the bare rethrow
/// ONLY when RetryPolicy::enabled(); the nested cause is preserved.
class TaskFailure : public std::runtime_error {
 public:
  TaskFailure(FailureReport report, std::exception_ptr cause)
      : std::runtime_error(detail::describe_failure(report, cause)),
        report_(std::move(report)),
        cause_(std::move(cause)) {}

  [[nodiscard]] const FailureReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const std::exception_ptr& cause() const noexcept {
    return cause_;
  }

 private:
  FailureReport report_;
  std::exception_ptr cause_;
};

/// Raised by a run whose progress watchdog fired: the flow could not make
/// progress for a full window. what() includes the diagnostic.
class StallError : public std::runtime_error {
 public:
  explicit StallError(std::string diagnostic)
      : std::runtime_error("run stalled (progress watchdog fired)\n" +
                           diagnostic),
        diagnostic_(std::move(diagnostic)) {}

  /// The per-worker diagnostic captured when the stall was detected.
  [[nodiscard]] const std::string& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  std::string diagnostic_;
};

/// What a dying worker leaves behind: its id, the task it died inside, and
/// the pre-body snapshot of that task's write spans. The body already ran
/// when the crash fired (death is decided after the body, mirroring the
/// transient-throw injection point), so the registry holds the HALF-result
/// of a task that never published — restoring `dirty` puts the data back to
/// the pre-task bytes before a replay re-executes it.
struct DeathRecord {
  WorkerId worker = kInvalidWorker;
  TaskId task = kInvalidTask;
  DataSnapshot dirty;  ///< write spans as they were before the fatal body
};

/// Shared crash blotter of one run: workers record their own death here on
/// the way out; the engine's teardown (and the watchdog's tripwire) read
/// it. Mutex-guarded — a death is a once-per-worker cold event.
class DeathBoard {
 public:
  void record(DeathRecord r) {
    std::lock_guard lock(mu_);
    records_.push_back(std::move(r));
    any_.store(true, std::memory_order_release);
  }

  /// Lock-free probe for the watchdog tripwire and hot-path cancel checks.
  [[nodiscard]] bool any_death() const noexcept {
    return any_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::vector<DeathRecord> take() {
    std::lock_guard lock(mu_);
    return std::move(records_);
  }

  void clear() noexcept {
    std::lock_guard lock(mu_);
    records_.clear();
    any_.store(false, std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  std::vector<DeathRecord> records_;
  std::atomic<bool> any_{false};
};

namespace detail {
inline std::string describe_worker_loss(
    const std::vector<DeathRecord>& deaths) {
  std::string s = "lost " + std::to_string(deaths.size()) + " worker(s):";
  for (const auto& d : deaths)
    s += " worker " + std::to_string(d.worker) + " died in task " +
         std::to_string(d.task) + ";";
  return s;
}
}  // namespace detail

/// Raised by a run that lost one or more workers permanently. A supervisor
/// (engine/supervisor.hpp) catches this, restores each record's dirty
/// spans, evicts the victims and resumes from the completion frontier;
/// without a supervisor it is a terminal, fully-described failure.
class WorkerLost : public std::runtime_error {
 public:
  WorkerLost(std::vector<DeathRecord> deaths, std::string diagnostic)
      : std::runtime_error(detail::describe_worker_loss(deaths) +
                           (diagnostic.empty() ? "" : "\n" + diagnostic)),
        deaths_(std::make_shared<std::vector<DeathRecord>>(std::move(deaths))),
        diagnostic_(std::move(diagnostic)) {}

  /// The victims, with their dirty write-span snapshots. Shared ownership:
  /// exception copies (rethrow paths) must not slice the snapshots.
  [[nodiscard]] const std::vector<DeathRecord>& deaths() const noexcept {
    return *deaths_;
  }
  [[nodiscard]] const std::string& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  std::shared_ptr<std::vector<DeathRecord>> deaths_;
  std::string diagnostic_;
};

}  // namespace rio::stf
