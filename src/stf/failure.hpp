// Structured failure vocabulary of the resilience layer.
//
// Two terminal outcomes exist beyond a plain body exception:
//   * TaskFailure — a task exhausted its RetryPolicy. Carries a
//     FailureReport (which task, where, how many attempts) plus the last
//     underlying exception, so callers can triage without string parsing.
//   * StallError — the progress watchdog detected a no-progress window and
//     aborted the run. Carries the per-worker diagnostic captured at the
//     moment of the stall.
//
// When retries are DISABLED the engines keep their historical contract and
// rethrow the original body exception unwrapped — existing error handling
// (and tests) see exactly what they always saw.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "stf/types.hpp"

namespace rio::stf {

/// What the runtime knows about a terminally-failed task.
struct FailureReport {
  TaskId task = kInvalidTask;
  std::string name;             ///< Task::name (may be empty)
  WorkerId worker = kInvalidWorker;
  std::uint32_t attempts = 0;   ///< executions performed (>= 1)
};

namespace detail {
inline std::string describe_failure(const FailureReport& r,
                                    const std::exception_ptr& cause) {
  std::string s = "task " + std::to_string(r.task);
  if (!r.name.empty()) s += " '" + r.name + "'";
  s += " failed on worker " + std::to_string(r.worker) + " after " +
       std::to_string(r.attempts) + " attempt(s)";
  if (cause) {
    try {
      std::rethrow_exception(cause);
    } catch (const std::exception& e) {
      s += std::string(": ") + e.what();
    } catch (...) {
      s += ": non-standard exception";
    }
  }
  return s;
}
}  // namespace detail

/// Raised when a task exhausted its retry budget. Replaces the bare rethrow
/// ONLY when RetryPolicy::enabled(); the nested cause is preserved.
class TaskFailure : public std::runtime_error {
 public:
  TaskFailure(FailureReport report, std::exception_ptr cause)
      : std::runtime_error(detail::describe_failure(report, cause)),
        report_(std::move(report)),
        cause_(std::move(cause)) {}

  [[nodiscard]] const FailureReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const std::exception_ptr& cause() const noexcept {
    return cause_;
  }

 private:
  FailureReport report_;
  std::exception_ptr cause_;
};

/// Raised by a run whose progress watchdog fired: the flow could not make
/// progress for a full window. what() includes the diagnostic.
class StallError : public std::runtime_error {
 public:
  explicit StallError(std::string diagnostic)
      : std::runtime_error("run stalled (progress watchdog fired)\n" +
                           diagnostic),
        diagnostic_(std::move(diagnostic)) {}

  /// The per-worker diagnostic captured when the stall was detected.
  [[nodiscard]] const std::string& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  std::string diagnostic_;
};

}  // namespace rio::stf
