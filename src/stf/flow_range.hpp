// FlowRange: a contiguous slice of a task flow.
//
// The hybrid execution model (see src/hybrid/) alternates phases that are
// executed by different engines over the SAME flow and data registry. A
// FlowRange is the non-owning view those engines consume: tasks
// [first, first + count) of a flow, plus the registry they resolve data
// against. Task ids inside a range remain the GLOBAL flow ids, so
// mappings, traces and validation compose across phases.
#pragma once

#include <cstddef>

#include "support/assert.hpp"
#include "stf/task_flow.hpp"

namespace rio::stf {

class FlowRange {
 public:
  /// Whole-flow view.
  explicit FlowRange(const TaskFlow& flow)
      : tasks_(flow.tasks().data()),
        count_(flow.num_tasks()),
        registry_(&flow.registry()),
        num_data_(flow.num_data()) {}

  /// Sub-range [first, first + count) of `flow`.
  FlowRange(const TaskFlow& flow, TaskId first, std::size_t count)
      : tasks_(flow.tasks().data() + first),
        count_(count),
        registry_(&flow.registry()),
        num_data_(flow.num_data()) {
    RIO_ASSERT(first + count <= flow.num_tasks());
  }

  /// View over externally-managed tasks (used by tests).
  FlowRange(const Task* tasks, std::size_t count, const DataRegistry& registry)
      : tasks_(tasks),
        count_(count),
        registry_(&registry),
        num_data_(registry.size()) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] const Task* begin() const noexcept { return tasks_; }
  [[nodiscard]] const Task* end() const noexcept { return tasks_ + count_; }
  [[nodiscard]] const Task& operator[](std::size_t i) const {
    RIO_DEBUG_ASSERT(i < count_);
    return tasks_[i];
  }
  [[nodiscard]] const DataRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] std::size_t num_data() const noexcept { return num_data_; }

  /// Global id of the first task (kInvalidTask for an empty range).
  [[nodiscard]] TaskId first_id() const noexcept {
    return count_ > 0 ? tasks_[0].id : kInvalidTask;
  }

 private:
  const Task* tasks_;
  std::size_t count_;
  const DataRegistry* registry_;
  std::size_t num_data_;
};

}  // namespace rio::stf
