#include "stf/trace.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace rio::stf {
namespace {

std::string describe(const TaskFlow& flow, TaskId t) {
  std::ostringstream os;
  os << "task " << t;
  const std::string& name = flow.task(t).name;
  if (!name.empty()) os << " ('" << name << "')";
  return os.str();
}

}  // namespace

ValidationResult Trace::validate(const TaskFlow& flow,
                                 const DependencyGraph& graph,
                                 bool require_worker_in_order) const {
  const std::size_t n = flow.num_tasks();

  // --- completeness: each task executed exactly once -----------------------
  std::vector<const TraceEvent*> by_task(n, nullptr);
  for (const TraceEvent& ev : events_) {
    if (ev.task >= n)
      return ValidationResult::failure("trace references unknown task id");
    if (by_task[ev.task] != nullptr)
      return ValidationResult::failure(describe(flow, ev.task) +
                                       " executed more than once");
    by_task[ev.task] = &ev;
  }
  for (TaskId t = 0; t < n; ++t)
    if (by_task[t] == nullptr)
      return ValidationResult::failure(describe(flow, t) + " never executed");

  // --- timestamp availability ----------------------------------------------
  // An engine that records no timestamps (every event 0/0) would make the
  // interval sweep and the dependency check below pass vacuously. Report
  // those checks as skipped instead of silently claiming race freedom.
  bool have_timestamps = events_.empty();
  for (const TraceEvent& ev : events_) {
    if (ev.start_ns != 0 || ev.end_ns != 0) {
      have_timestamps = true;
      break;
    }
  }

  // --- data-race freedom: per-data interval sweep ---------------------------
  // For each data object, collect (start, end, writer?) intervals and sweep
  // in start order; any overlap involving a writer is a race.
  struct Interval {
    std::uint64_t start, end;
    bool writer;
    TaskId task;
  };
  std::vector<std::vector<Interval>> per_data(
      have_timestamps ? flow.num_data() : 0);
  for (TaskId t = 0; t < n && have_timestamps; ++t) {
    const TraceEvent* ev = by_task[t];
    for (const Access& a : flow.task(t).accesses)
      per_data[a.data].push_back(
          {ev->start_ns, ev->end_ns, is_write(a.mode), t});
  }
  for (DataId d = 0; d < per_data.size(); ++d) {
    auto& ivs = per_data[d];
    std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
      return a.start < b.start;
    });
    // Min-heap of active interval ends, plus the count of active writers.
    using HeapItem = std::pair<std::uint64_t, bool>;  // (end, writer)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> active;
    std::size_t active_writers = 0;
    for (const Interval& iv : ivs) {
      while (!active.empty() && active.top().first <= iv.start) {
        if (active.top().second) --active_writers;
        active.pop();
      }
      const bool conflict =
          (iv.writer && !active.empty()) || (!iv.writer && active_writers > 0);
      if (conflict) {
        return ValidationResult::failure(
            "data race on data object " + std::to_string(d) + " involving " +
            describe(flow, iv.task));
      }
      active.emplace(iv.end, iv.writer);
      if (iv.writer) ++active_writers;
    }
  }

  // --- sequential consistency: predecessors finish before successors start -
  for (TaskId t = 0; t < n && have_timestamps; ++t) {
    for (TaskId p : graph.predecessors(t)) {
      if (by_task[p]->end_ns > by_task[t]->start_ns) {
        return ValidationResult::failure(
            describe(flow, t) + " started before its dependency " +
            describe(flow, p) + " finished");
      }
    }
  }

  // --- in-order per worker (RunInOrder model's additional constraint) ------
  if (require_worker_in_order) {
    std::vector<std::vector<const TraceEvent*>> per_worker;
    for (const TraceEvent& ev : events_) {
      if (ev.worker >= per_worker.size()) per_worker.resize(ev.worker + 1);
      per_worker[ev.worker].push_back(&ev);
    }
    for (auto& evs : per_worker) {
      std::sort(evs.begin(), evs.end(),
                [](const TraceEvent* a, const TraceEvent* b) {
                  return a->seq < b->seq;
                });
      for (std::size_t i = 1; i < evs.size(); ++i) {
        if (evs[i - 1]->task > evs[i]->task) {
          return ValidationResult::failure(
              "worker " + std::to_string(evs[i]->worker) + " executed " +
              describe(flow, evs[i]->task) + " after " +
              describe(flow, evs[i - 1]->task) + " (out of order)");
        }
      }
    }
  }

  if (!have_timestamps) {
    ValidationResult r;
    r.timing_checked = false;
    r.reason =
        "timestamps unavailable: data-race and dependency-order checks "
        "skipped";
    return r;
  }
  return {};
}

}  // namespace rio::stf
