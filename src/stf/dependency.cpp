#include "stf/dependency.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"
#include "stf/dep_scanner.hpp"
#include "stf/flow_image.hpp"

namespace rio::stf {

DependencyGraph::DependencyGraph(const FlowRange& range) {
  const std::size_t n = range.size();
  preds_.resize(n);
  succs_.resize(n);

  // Single pass through the shared dependency scanner (dep_scanner.hpp),
  // which implements the sequential-consistency bookkeeping of Section 2.1
  // plus the commuting-reduction extension.
  DependencyScanner scanner(range.num_data());
  std::vector<TaskId> scratch;
  for (TaskId t = 0; t < n; ++t) {
    scanner.next(range[t], t, scratch);
    // Self-edges are impossible: state updates happen after dep collection.
    preds_[t] = scratch;
    for (TaskId p : scratch) {
      RIO_DEBUG_ASSERT(p < t);
      succs_[p].push_back(t);
    }
    num_edges_ += scratch.size();
  }
}

DependencyGraph::DependencyGraph(const ImageRange& range) {
  const std::size_t n = range.size();
  preds_.resize(n);
  succs_.resize(n);

  DependencyScanner scanner(range.num_data());
  std::vector<TaskId> scratch;
  for (TaskId t = 0; t < n; ++t) {
    scanner.next(range.acc_begin(t), range.acc_end(t), t, scratch);
    preds_[t] = scratch;
    for (TaskId p : scratch) {
      RIO_DEBUG_ASSERT(p < t);
      succs_[p].push_back(t);
    }
    num_edges_ += scratch.size();
  }
}

std::uint64_t DependencyGraph::critical_path_cost(const FlowRange& range) const {
  const std::size_t n = num_tasks();
  std::vector<std::uint64_t> finish(n, 0);
  std::uint64_t best = 0;
  // Task ids are already a topological order (edges only point forward).
  for (TaskId t = 0; t < n; ++t) {
    std::uint64_t start = 0;
    for (TaskId p : preds_[t]) start = std::max(start, finish[p]);
    const std::uint64_t cost = std::max<std::uint64_t>(range[t].cost, 1);
    finish[t] = start + cost;
    best = std::max(best, finish[t]);
  }
  return best;
}

std::vector<std::uint64_t> DependencyGraph::bottom_levels(
    const TaskFlow& flow) const {
  const std::size_t n = num_tasks();
  std::vector<std::uint64_t> level(n, 0);
  // Reverse topological order (ids are topological).
  for (std::size_t i = n; i-- > 0;) {
    const auto t = static_cast<TaskId>(i);
    std::uint64_t best = 0;
    for (TaskId s : succs_[t]) best = std::max(best, level[s]);
    level[t] = best + std::max<std::uint64_t>(flow.task(t).cost, 1);
  }
  return level;
}

std::size_t DependencyGraph::max_ready_width() const {
  const std::size_t n = num_tasks();
  std::vector<std::size_t> indeg(n);
  for (TaskId t = 0; t < n; ++t) indeg[t] = preds_[t].size();

  // Peel the DAG level by level; the widest level bounds usable parallelism
  // for unit-cost tasks.
  std::vector<TaskId> frontier;
  for (TaskId t = 0; t < n; ++t)
    if (indeg[t] == 0) frontier.push_back(t);

  std::size_t width = frontier.size();
  std::vector<TaskId> next;
  while (!frontier.empty()) {
    next.clear();
    for (TaskId t : frontier) {
      for (TaskId s : succs_[t]) {
        if (--indeg[s] == 0) next.push_back(s);
      }
    }
    width = std::max(width, next.size());
    frontier.swap(next);
  }
  return width;
}

}  // namespace rio::stf
