#include "modelcheck/impl.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "coor/sync_ops.hpp"
#include "support/assert.hpp"
#include "support/clock.hpp"
#include "rio/data_object.hpp"
#include "rio/pruning.hpp"
#include "modelcheck/spec.hpp"
#include "stf/dep_scanner.hpp"

namespace rio::mc::impl {
namespace {

using support::WaitPolicy;

/// Thrown into worker threads at teardown to unwind them out of the real
/// protocol code (the reason the seam'd templates are not noexcept).
struct AbortRun {};

/// Thread-local identity of the virtual worker executing this thread —
/// how an instrumented word knows who is announcing an operation.
thread_local std::uint32_t tl_worker = 0;

enum class OpKind : std::uint8_t {
  kLoad,      ///< acquire load (also the kBlock wait's probe read)
  kStore,     ///< release/relaxed store (SC interleaving model)
  kRmw,       ///< fetch_add
  kCas,       ///< compare_exchange: store operand2 iff word == operand
  kNotify,    ///< wake every worker parked on the word
  kWaitTest,  ///< spin-policy wait: enabled only when word == operand
  kWaitDiff,  ///< spin-policy wait: enabled only when word != operand
  kPark,      ///< kBlock wait: park iff word still == operand
  kPush,      ///< model ready-queue push (coor)
  kPop,       ///< model ready-queue pop (coor)
  kLock,      ///< acquire a mutex word: enabled while free, sets it held
};

/// Pseudo word id for the coor ready-queue ops: push/pop are mutually
/// dependent but independent of every real shared word.
constexpr int kQueueWord = -2;

struct Op {
  OpKind kind = OpKind::kLoad;
  int word = -1;
  std::uint64_t operand = 0;  ///< store value / rmw delta / expected value
  std::uint64_t operand2 = 0;  ///< kCas: the desired value
  std::uint64_t mask = ~std::uint64_t{0};  ///< value width of the word type
  bool write_like = false;
};

/// Two ops conflict when they touch the same word and at least one mutates
/// it (store / rmw / notify / push / pop). The DPOR backtrack rule and the
/// sleep-set independence filter both use this.
bool dependent(const Op& a, const Op& b) {
  if (a.word != b.word) return false;
  return a.write_like || b.write_like;
}

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "fetch_add";
    case OpKind::kCas: return "cas";
    case OpKind::kNotify: return "notify";
    case OpKind::kWaitTest: return "wait";
    case OpKind::kWaitDiff: return "wait-diff";
    case OpKind::kPark: return "park";
    case OpKind::kPush: return "push";
    case OpKind::kPop: return "pop";
    case OpKind::kLock: return "lock";
  }
  return "?";
}

/// Window-invariant expectation of one access: what the sequential prefix
/// says the shared words must hold when the owning task starts.
struct Expect {
  stf::DataId data = stf::kInvalidData;
  bool write = false;
  stf::TaskId expected_writer = rt::kNoWrite;
  std::uint64_t expected_reads = 0;
};

/// What the per-interleaving checks need, precomputed once per verify().
struct CheckPlan {
  const stf::TaskFlow* flow = nullptr;
  std::vector<std::uint64_t> conflict;        ///< per task: conflict bitmask
  std::vector<std::vector<Expect>> expect;    ///< per task (empty for coor)
  bool check_window = false;                  ///< rio / rio-pruned only
};

struct Violation {
  std::string kind;     // deadlock | lost-wakeup | refinement | in-order
  std::string message;
};

/// The controlled scheduler: real threads, one runnable between any two
/// scheduling points. Workers announce their next shared-word operation
/// and block; the explorer grants exactly one; the granted worker applies
/// the effect under the lock and runs undisturbed until its next
/// announcement. Everything (word values, queue, check state) is guarded
/// by `mu`, and because execution is serialized the real code's
/// non-word shared state (e.g. COOR successor lists) is race-free by
/// construction.
class Controlled {
 public:
  enum class SlotState : std::uint8_t { kRunning, kAtPoint, kParked, kDone };

  struct Slot {
    SlotState state = SlotState::kRunning;
    Op op{};
    bool woken = false;
  };

  Controlled(std::uint32_t n_threads, bool drop_notify)
      : slots_(n_threads), drop_notify_(drop_notify) {}

  int new_word(std::uint64_t init) {
    words_.push_back(init);
    return static_cast<int>(words_.size()) - 1;
  }

  void set_checks(CheckPlan plan) { checks_ = std::move(plan); }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }
  void configure_pop_exit(int word, std::uint64_t target) {
    pop_exit_word_ = word;
    pop_exit_target_ = target;
  }

  // ---- worker side --------------------------------------------------------

  /// Announce `op`, block until granted, apply the effect, return the
  /// result (old value for rmw, current for loads). kPark additionally
  /// blocks until a notify wakes the worker (or the park fails because the
  /// value moved).
  std::uint64_t perform(const Op& op) {
    const std::uint32_t w = tl_worker;
    std::unique_lock lk(mu_);
    slots_[w].op = op;
    slots_[w].state = SlotState::kAtPoint;
    cv_.notify_all();
    cv_.wait(lk, [&] { return teardown_ || grant_ == static_cast<int>(w); });
    if (teardown_) throw AbortRun{};
    grant_ = -1;
    slots_[w].state = SlotState::kRunning;
    std::uint64_t result = 0;
    bool parked = false;
    switch (op.kind) {
      case OpKind::kLoad:
      case OpKind::kWaitTest:
      case OpKind::kWaitDiff:
        result = words_[op.word];
        break;
      case OpKind::kStore:
        words_[op.word] = op.operand & op.mask;
        break;
      case OpKind::kRmw:
        result = words_[op.word];
        words_[op.word] = (result + op.operand) & op.mask;
        break;
      case OpKind::kCas:
        result = words_[op.word];
        if (result == op.operand) words_[op.word] = op.operand2 & op.mask;
        break;
      case OpKind::kNotify:
        if (!drop_notify_) {
          for (Slot& s : slots_)
            if (s.state == SlotState::kParked && s.op.word == op.word)
              s.woken = true;
        }
        break;
      case OpKind::kPark:
        if (words_[op.word] == op.operand) {
          parked = true;
        } else {
          result = 1;  // value already moved: park fails, caller re-probes
        }
        break;
      case OpKind::kPush:
        ready_.push_back(op.operand);
        break;
      case OpKind::kPop:
        if (!ready_.empty()) {
          result = ready_.front() + 1;
          ready_.pop_front();
        } else {
          result = 0;  // exit: every task completed
        }
        break;
      case OpKind::kLock:
        words_[op.word] = 1;  // only granted while free
        break;
    }
    if (parked) {
      slots_[w].state = SlotState::kParked;
      cv_.notify_all();
      cv_.wait(lk, [&] { return teardown_ || slots_[w].woken; });
      if (teardown_) throw AbortRun{};
      slots_[w].woken = false;
      slots_[w].state = SlotState::kRunning;
      return 0;
    }
    cv_.notify_all();
    return result;
  }

  void queue_push(std::uint64_t v) {
    Op op;
    op.kind = OpKind::kPush;
    op.word = kQueueWord;
    op.operand = v;
    op.write_like = true;
    perform(op);
  }

  std::optional<std::uint64_t> queue_pop() {
    Op op;
    op.kind = OpKind::kPop;
    op.word = kQueueWord;
    op.write_like = true;
    const std::uint64_t r = perform(op);
    if (r == 0) return std::nullopt;
    return r - 1;
  }

  /// Scheduler-level mutex on a word: lock is enabled only while the word
  /// is 0 (models the per-node std::mutex COOR holds around finished /
  /// successors / dep_retain — the checker must not explore interleavings
  /// the real lock forbids).
  void lock(int word) {
    Op op;
    op.kind = OpKind::kLock;
    op.word = word;
    op.write_like = true;
    perform(op);
  }

  void unlock(int word) {
    Op op;
    op.kind = OpKind::kStore;
    op.word = word;
    op.operand = 0;
    op.write_like = true;
    perform(op);
  }

  /// Task-begin event with the inline checks. Not a scheduling point: the
  /// caller is the only thread running, the lock just orders it against
  /// the explorer's bookkeeping.
  void task_started(stf::TaskId t) {
    bool fail = false;
    {
      std::unique_lock lk(mu_);
      start_order_.push_back(t);
      const std::uint64_t bit = std::uint64_t{1} << t;
      const std::uint64_t earlier = bit - 1;
      const std::uint64_t missing =
          checks_.conflict[t] & earlier & ~terminated_;
      if (missing != 0) {
        std::ostringstream os;
        os << "task " << t << " started before earlier conflicting task(s)";
        for (std::uint32_t p = 0; p < 64; ++p)
          if ((missing >> p) & 1u) os << ' ' << p;
        os << " terminated (STFSpec guard violated)";
        raise_locked("refinement", os.str());
        fail = true;
      } else if (checks_.check_window) {
        for (const Expect& e : checks_.expect[t]) {
          const std::uint64_t writer = words_[data_words_[e.data].first];
          if (writer != e.expected_writer) {
            std::ostringstream os;
            os << "task " << t << " started with last_executed_write("
               << e.data << ") = " << static_cast<std::int64_t>(
                      static_cast<std::uint64_t>(writer) == wide_no_write_
                          ? -1
                          : static_cast<std::int64_t>(writer))
               << ", expected "
               << (e.expected_writer == rt::kNoWrite
                       ? std::int64_t{-1}
                       : static_cast<std::int64_t>(e.expected_writer))
               << " (in-order window invariant violated)";
            raise_locked("in-order", os.str());
            fail = true;
            break;
          }
          if (e.write &&
              words_[data_words_[e.data].second] != e.expected_reads) {
            std::ostringstream os;
            os << "task " << t << " started with nb_reads_since_write("
               << e.data << ") = " << words_[data_words_[e.data].second]
               << ", expected " << e.expected_reads
               << " (in-order window invariant violated)";
            raise_locked("in-order", os.str());
            fail = true;
            break;
          }
        }
      }
    }
    if (fail) throw AbortRun{};
  }

  void task_finished(stf::TaskId t) {
    std::unique_lock lk(mu_);
    terminated_ |= std::uint64_t{1} << t;
  }

  void mark_done() {
    std::unique_lock lk(mu_);
    slots_[tl_worker].state = SlotState::kDone;
    cv_.notify_all();
  }

  // ---- explorer side ------------------------------------------------------

  enum class Phase : std::uint8_t { kChoice, kAllDone, kStuck, kViolation };

  /// Block until every thread is announced / parked / done, then report
  /// what the explorer can do. `enabled`/`ops` are filled for kChoice.
  Phase wait_quiescent(std::vector<std::uint32_t>& enabled,
                       std::vector<Op>& ops) {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return violation_.has_value() || quiescent_locked(); });
    if (violation_) return Phase::kViolation;
    enabled.clear();
    ops.clear();
    bool all_done = true;
    for (std::uint32_t w = 0; w < slots_.size(); ++w) {
      const Slot& s = slots_[w];
      if (s.state != SlotState::kDone) all_done = false;
      if (s.state != SlotState::kAtPoint) continue;
      if (s.op.kind == OpKind::kWaitTest &&
          words_[s.op.word] != s.op.operand)
        continue;  // spin wait: disabled until the word reaches the value
      if (s.op.kind == OpKind::kWaitDiff &&
          words_[s.op.word] == s.op.operand)
        continue;  // spin wait-for-change: disabled while unchanged
      if (s.op.kind == OpKind::kLock && words_[s.op.word] != 0)
        continue;  // mutex held
      if (s.op.kind == OpKind::kPop && ready_.empty() &&
          !(pop_exit_word_ >= 0 &&
            words_[pop_exit_word_] == pop_exit_target_))
        continue;  // empty queue and the run is not finished yet
      enabled.push_back(w);
      ops.push_back(s.op);
    }
    if (all_done) return Phase::kAllDone;
    if (enabled.empty()) return Phase::kStuck;
    return Phase::kChoice;
  }

  void grant(std::uint32_t w) {
    std::unique_lock lk(mu_);
    grant_ = static_cast<int>(w);
    cv_.notify_all();
  }

  void teardown() {
    std::unique_lock lk(mu_);
    teardown_ = true;
    cv_.notify_all();
  }

  /// Classify a stuck state: a worker parked on a word whose value already
  /// moved past its observation is a lost wakeup (the store was not
  /// followed by the notify the seam contract requires); anything else is
  /// a protocol deadlock.
  Violation classify_stuck() {
    std::unique_lock lk(mu_);
    for (std::uint32_t w = 0; w < slots_.size(); ++w) {
      const Slot& s = slots_[w];
      if (s.state == SlotState::kParked && words_[s.op.word] != s.op.operand) {
        std::ostringstream os;
        os << "worker " << w << " is parked on word " << s.op.word
           << " having observed " << s.op.operand << ", but the word now"
           << " holds " << words_[s.op.word]
           << " and no notify will ever arrive";
        return {"lost-wakeup", os.str()};
      }
    }
    std::ostringstream os;
    os << "no runnable worker with tasks outstanding:";
    for (std::uint32_t w = 0; w < slots_.size(); ++w) {
      const Slot& s = slots_[w];
      if (s.state == SlotState::kDone) continue;
      os << " [worker " << w << ' '
         << (s.state == SlotState::kParked ? "parked" : kind_name(s.op.kind))
         << " word " << s.op.word << ']';
    }
    return {"deadlock", os.str()};
  }

  [[nodiscard]] bool all_tasks_terminated(std::uint64_t all_mask) {
    std::unique_lock lk(mu_);
    return (terminated_ & all_mask) == all_mask;
  }

  /// Completion frontier right now — what a supervisor capture at this
  /// scheduling point would checkpoint (recovery mode).
  [[nodiscard]] std::uint64_t terminated_mask() {
    std::unique_lock lk(mu_);
    return terminated_;
  }

  [[nodiscard]] std::optional<Violation> violation() {
    std::unique_lock lk(mu_);
    return violation_;
  }

  /// data -> (writer word id, reads word id), for the window checks.
  std::vector<std::pair<int, int>> data_words_;

 private:
  bool quiescent_locked() const {
    if (grant_ != -1) return false;
    for (const Slot& s : slots_) {
      if (s.state == SlotState::kRunning) return false;
      if (s.state == SlotState::kParked && s.woken) return false;
    }
    return true;
  }

  void raise_locked(std::string kind, std::string message) {
    if (!violation_) violation_ = Violation{std::move(kind), std::move(message)};
    teardown_ = true;
    cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> words_;
  std::deque<std::uint64_t> ready_;
  int grant_ = -1;
  bool teardown_ = false;
  bool drop_notify_ = false;
  int pop_exit_word_ = -1;
  std::uint64_t pop_exit_target_ = 0;
  CheckPlan checks_;
  std::uint64_t terminated_ = 0;
  std::vector<stf::TaskId> start_order_;
  std::optional<Violation> violation_;
  std::uint64_t wide_no_write_ = static_cast<std::uint64_t>(rt::kNoWrite);
};

// ---------------------------------------------------------------------------
// The instrumented word type. ADL on these free functions is what routes
// the real protocol templates (rio::rt::acquire_for & friends,
// rio::coor::dep_retain/dep_release) into the scheduler.
// ---------------------------------------------------------------------------

template <typename T>
struct Word {
  Controlled* c = nullptr;
  int id = -1;
};

template <typename T>
constexpr std::uint64_t enc(T v) {
  return static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
}
template <typename T>
constexpr T dec(std::uint64_t raw) {
  return static_cast<T>(
      static_cast<std::make_unsigned_t<T>>(raw & enc(static_cast<T>(~T{}))));
}
template <typename T>
constexpr std::uint64_t width_mask() {
  return enc(static_cast<T>(~T{}));
}

template <typename T>
T load_acq(const Word<T>& w) {
  Op op;
  op.kind = OpKind::kLoad;
  op.word = w.id;
  op.mask = width_mask<T>();
  return dec<T>(w.c->perform(op));
}

template <typename T>
void store_rel(Word<T>& w, T value) {
  Op op;
  op.kind = OpKind::kStore;
  op.word = w.id;
  op.operand = enc(value);
  op.mask = width_mask<T>();
  op.write_like = true;
  w.c->perform(op);
}

template <typename T>
void store_rlx(Word<T>& w, T value) {
  // SC interleaving model: relaxed and release stores are the same step.
  store_rel(w, value);
}

template <typename T>
T fetch_add(Word<T>& w, T delta) {
  Op op;
  op.kind = OpKind::kRmw;
  op.word = w.id;
  op.operand = enc(delta);
  op.mask = width_mask<T>();
  op.write_like = true;
  return dec<T>(w.c->perform(op));
}

template <typename T>
bool cas(Word<T>& w, T& expected, T desired) {
  Op op;
  op.kind = OpKind::kCas;
  op.word = w.id;
  op.operand = enc(expected);
  op.operand2 = enc(desired);
  op.mask = width_mask<T>();
  op.write_like = true;
  const std::uint64_t old = w.c->perform(op);
  if (old == enc(expected)) return true;
  expected = dec<T>(old);
  return false;
}

template <typename T>
void notify(Word<T>& w, WaitPolicy policy) {
  if (policy != WaitPolicy::kBlock) return;  // production makes no syscall
  Op op;
  op.kind = OpKind::kNotify;
  op.word = w.id;
  op.write_like = true;
  w.c->perform(op);
}

template <typename T>
bool wait_equal(const Word<T>& w, T expected, WaitPolicy policy,
                const std::atomic<bool>* /*abort*/ = nullptr,
                std::uint64_t* /*spins*/ = nullptr) {
  if (policy != WaitPolicy::kBlock) {
    // Spin model: one await step, enabled only once the word holds the
    // value (fair abstraction of a pure equality spin).
    Op op;
    op.kind = OpKind::kWaitTest;
    op.word = w.id;
    op.operand = enc(expected);
    op.mask = width_mask<T>();
    w.c->perform(op);
    return true;
  }
  // kBlock model follows std::atomic::wait / futex semantics exactly:
  // probe the word; if unwanted, park atomically iff it STILL holds the
  // probed value; a parked worker is woken ONLY by a notify on that word.
  // A dropped notify therefore leaves the worker parked forever — the
  // state the lost-wakeup check flags.
  for (;;) {
    Op probe;
    probe.kind = OpKind::kLoad;
    probe.word = w.id;
    probe.mask = width_mask<T>();
    const std::uint64_t v = w.c->perform(probe);
    if (v == enc(expected)) return true;
    Op park;
    park.kind = OpKind::kPark;
    park.word = w.id;
    park.operand = v;
    park.mask = width_mask<T>();
    w.c->perform(park);  // blocks while parked; returns woken or failed
  }
}

/// Waits until the word no longer holds `old` — the doorbell-parking
/// primitive (rio bells, ready-ring version word). Same futex-faithful
/// probe/park structure as wait_equal, with the inverted condition.
template <typename T>
bool wait_changed(const Word<T>& w, T old, WaitPolicy policy,
                  const std::atomic<bool>* /*abort*/ = nullptr,
                  std::uint64_t* /*spins*/ = nullptr) {
  if (policy != WaitPolicy::kBlock) {
    // Spin model: one await step, enabled only once the word moved (fair
    // abstraction of a pure inequality spin).
    Op op;
    op.kind = OpKind::kWaitDiff;
    op.word = w.id;
    op.operand = enc(old);
    op.mask = width_mask<T>();
    w.c->perform(op);
    return true;
  }
  for (;;) {
    Op probe;
    probe.kind = OpKind::kLoad;
    probe.word = w.id;
    probe.mask = width_mask<T>();
    const std::uint64_t v = w.c->perform(probe);
    if (v != enc(old)) return true;
    Op park;
    park.kind = OpKind::kPark;
    park.word = w.id;
    park.operand = v;
    park.mask = width_mask<T>();
    w.c->perform(park);
  }
}

/// The shape rio::rt::acquire_for / publish_* expect: `.value` wrapping.
template <typename T>
struct Cell {
  Word<T> value;
};

struct ModelShared {
  Cell<stf::TaskId> last_executed_write;
  Cell<std::uint64_t> nb_reads_since_write;
};

// ---------------------------------------------------------------------------
// Explorer: stateless DFS over schedules with sleep sets + clock-vector
// backtracking (Flanagan–Godefroid DPOR), or naive full enumeration.
// ---------------------------------------------------------------------------

class Explorer {
 public:
  Explorer(const stf::TaskFlow& flow, const rt::Mapping& mapping,
           const Options& opts)
      : flow_(flow), mapping_(mapping), opts_(opts) {
    n_threads_ = opts.workers + (opts.engine == EngineKind::kCoor ? 1 : 0);
    build_check_plan();
  }

  /// Recovery phase 1: the thread executing `crash_task` dies right after
  /// that task's body (terminate never published). Crash-induced quiescent
  /// states become accepted run ends instead of deadlock violations, and
  /// every completion frontier passed through — any of which the
  /// supervisor could capture — lands in `frontiers`.
  void set_crash(stf::TaskId crash_task, std::set<std::uint64_t>* frontiers) {
    crash_mode_ = true;
    crash_task_ = crash_task;
    frontiers_ = frontiers;
  }

  Result explore() {
    support::Stopwatch sw;
    Result res;
    for (;;) {
      if (res.explored + res.pruned >= opts_.max_interleavings) {
        res.truncated = true;
        break;
      }
      const RunEnd end = run_one(nullptr, res);
      if (end == RunEnd::kViolation) break;
      if (end == RunEnd::kComplete)
        ++res.explored;
      else
        ++res.pruned;  // sleep-blocked or bound-truncated branch
      if (!backtrack()) break;  // search space exhausted
    }
    res.seconds = sw.elapsed_s();
    return res;
  }

  Result replay(const std::vector<std::uint32_t>& schedule) {
    support::Stopwatch sw;
    Result res;
    const RunEnd end = run_one(&schedule, res);
    if (end == RunEnd::kComplete) ++res.explored;
    res.seconds = sw.elapsed_s();
    return res;
  }

 private:
  enum class RunEnd : std::uint8_t { kComplete, kViolation, kPruned };

  struct Frame {
    std::vector<std::uint32_t> enabled;
    std::vector<Op> ops;                  ///< pending op of enabled[i]
    std::vector<std::uint32_t> backtrack; ///< workers to explore here
    std::vector<std::uint32_t> explored;  ///< workers already explored
    std::vector<std::uint32_t> sleep;     ///< sleep set on entry
    std::uint32_t chosen = 0;
    Op chosen_op{};
    std::uint32_t prev = 0;               ///< worker of the preceding step
    bool prev_enabled = false;            ///< ... and is it enabled here?
    std::uint32_t preemptions = 0;        ///< accumulated before this state
  };

  void build_check_plan() {
    const std::size_t n = flow_.num_tasks();
    SpecProblem spec(flow_, opts_.workers);
    plan_.flow = &flow_;
    plan_.conflict.resize(n);
    for (std::uint32_t t = 0; t < n; ++t)
      plan_.conflict[t] = spec.conflict_mask(t);
    plan_.check_window = opts_.engine != EngineKind::kCoor;
    if (plan_.check_window) {
      // Same sequential scan the pruned-plan compiler performs: the shared
      // words a task must observe on start are fully determined by the
      // prefix of the flow.
      plan_.expect.resize(n);
      struct Scan {
        stf::TaskId last_writer = rt::kNoWrite;
        std::uint64_t reads = 0;
      };
      std::vector<Scan> scan(flow_.num_data());
      for (const stf::Task& task : flow_.tasks()) {
        for (const stf::Access& a : task.accesses) {
          Expect e;
          e.data = a.data;
          e.write = stf::is_write(a.mode);
          e.expected_writer = scan[a.data].last_writer;
          e.expected_reads = scan[a.data].reads;
          plan_.expect[task.id].push_back(e);
        }
        for (const stf::Access& a : task.accesses) {
          if (stf::is_write(a.mode)) {
            scan[a.data].last_writer = task.id;
            scan[a.data].reads = 0;
          } else {
            scan[a.data].reads += 1;
          }
        }
      }
    }
  }

  static bool contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }

  /// One execution: replay stack_ prefix choices, then continue with the
  /// default policy, extending stack_ and computing DPOR backtrack points.
  /// With `forced`, follow that schedule instead (no stack_, no DPOR).
  RunEnd run_one(const std::vector<std::uint32_t>* forced, Result& res) {
    Controlled ctl(n_threads_, opts_.drop_notify);
    ctl.set_checks(plan_);

    const std::size_t n_tasks = flow_.num_tasks();
    const std::size_t n_data = flow_.num_data();

    // ---- engine state + bodies (real protocol code) ----------------------
    const WaitPolicy policy = opts_.policy;
    std::vector<ModelShared> shared;
    struct CoorNode {
      Word<std::int32_t> remaining;
      int mu = -1;  ///< model of the per-node std::mutex (a lock word)
      bool finished = false;
      std::vector<std::uint64_t> succs;
    };
    std::vector<CoorNode> nodes;
    Word<std::uint64_t> completed;
    std::shared_ptr<const rt::PrunedPlan> pruned;
    // Per-worker doorbells: the rio engines' kBlock path parks on bells
    // (word_notify = false + release-boundary ring_doorbell), exactly as
    // the production launch() gates it for unwatched block runs.
    std::vector<Word<std::uint64_t>> bells;
    const bool use_bells =
        opts_.engine != EngineKind::kCoor && policy == WaitPolicy::kBlock;
    // kCoor + kRing: the REAL ReadyRingT code instantiated on the
    // instrumented word type — CAS slot claims, version/waiters doorbell
    // pair and all. kLocked keeps the one-step queue abstraction.
    std::optional<coor::ReadyRingT<Word<std::uint64_t>>> ring;

    if (opts_.engine != EngineKind::kCoor) {
      shared.resize(n_data);
      ctl.data_words_.resize(n_data);
      for (std::size_t d = 0; d < n_data; ++d) {
        const int ww = ctl.new_word(enc(rt::kNoWrite));
        const int rw = ctl.new_word(0);
        shared[d].last_executed_write.value = {&ctl, ww};
        shared[d].nb_reads_since_write.value = {&ctl, rw};
        ctl.data_words_[d] = {ww, rw};
      }
      if (use_bells) {
        bells.resize(opts_.workers);
        for (auto& b : bells) b = {&ctl, ctl.new_word(0)};
      }
      if (opts_.engine == EngineKind::kRioPruned)
        pruned = std::make_shared<const rt::PrunedPlan>(flow_, mapping_,
                                                        opts_.workers);
    } else {
      nodes.resize(n_tasks);
      for (auto& node : nodes) {
        node.remaining = {&ctl, ctl.new_word(enc(std::int32_t{1}))};
        node.mu = ctl.new_word(0);
      }
      completed = {&ctl, ctl.new_word(0)};
      if (opts_.queue == coor::QueueKind::kRing) {
        ring.emplace(std::max<std::size_t>(n_tasks, 1),
                     [&](Word<std::uint64_t>& wd, std::uint64_t v) {
                       wd = {&ctl, ctl.new_word(v)};
                     });
      } else {
        ctl.configure_pop_exit(completed.id, n_tasks);
      }
    }

    auto body = [&](std::uint32_t w) {
      switch (opts_.engine) {
        case EngineKind::kRio: {
          // Algorithm 1: unroll the whole flow, execute own tasks through
          // the real Algorithm 2 routines, declare the rest. Under kBlock
          // the waits park on the worker's bell and publishes skip the
          // per-word notify — the production doorbell configuration.
          std::vector<rt::LocalDataState> local(n_data);
          Word<std::uint64_t>* bell = use_bells ? &bells[w] : nullptr;
          const bool word_notify = !use_bells;
          for (stf::TaskId t = 0; t < n_tasks; ++t) {
            const stf::Task& task = flow_.task(t);
            if (mapping_(t) == w) {
              for (const stf::Access& a : task.accesses) {
                if (stf::is_write(a.mode))
                  rt::get_write(shared[a.data], local[a.data], policy,
                                nullptr, nullptr, bell);
                else
                  rt::get_read(shared[a.data], local[a.data], policy,
                               nullptr, nullptr, bell);
              }
              ctl.task_started(t);
              if (crash_mode_ && t == crash_task_) return;  // worker dies
              ctl.task_finished(t);
              for (const stf::Access& a : task.accesses) {
                if (stf::is_write(a.mode))
                  rt::terminate_write(shared[a.data], local[a.data], t,
                                      policy, word_notify);
                else
                  rt::terminate_read(shared[a.data], local[a.data], policy,
                                     word_notify);
              }
              if (use_bells) {
                for (std::uint32_t peer = 0; peer < opts_.workers; ++peer)
                  if (peer != w) rt::ring_doorbell(bells[peer], policy);
              }
            } else {
              for (const stf::Access& a : task.accesses) {
                if (stf::is_write(a.mode))
                  rt::declare_write(local[a.data], t);
                else
                  rt::declare_read(local[a.data]);
              }
            }
          }
          break;
        }
        case EngineKind::kRioPruned: {
          // Pruned executor: wait on the plan's precomputed expectations,
          // publish through the same terminate halves — the production
          // run_pruned loop minus telemetry (incl. its doorbell gate).
          Word<std::uint64_t>* bell = use_bells ? &bells[w] : nullptr;
          const bool word_notify = !use_bells;
          for (const rt::PrunedTask& pt : pruned->tasks_for(w)) {
            for (const rt::PrunedAccess& pa : pt.accesses)
              rt::acquire_for(shared[pa.data], pa.expected_writer,
                              pa.expected_reads, stf::is_write(pa.mode),
                              policy, nullptr, nullptr, bell);
            ctl.task_started(pt.id);
            if (crash_mode_ && pt.id == crash_task_) return;  // worker dies
            ctl.task_finished(pt.id);
            for (const rt::PrunedAccess& pa : pt.accesses) {
              if (stf::is_write(pa.mode))
                rt::publish_write(shared[pa.data], pt.id, policy,
                                  word_notify);
              else
                rt::publish_read(shared[pa.data], policy, word_notify);
            }
            if (use_bells) {
              for (std::uint32_t peer = 0; peer < opts_.workers; ++peer)
                if (peer != w) rt::ring_doorbell(bells[peer], policy);
            }
          }
          break;
        }
        case EngineKind::kCoor: {
          if (w == opts_.workers) {
            // Master: real incremental dependency discovery, dependency
            // counters through the real coor::sync_ops seam.
            stf::DependencyScanner scanner(n_data);
            std::vector<stf::TaskId> preds;
            for (stf::TaskId li = 0; li < n_tasks; ++li) {
              scanner.next(flow_.task(li), li, preds);
              for (stf::TaskId prev : preds) {
                // Real code: std::lock_guard on nodes[prev].mu around the
                // finished check, successor registration, and retain.
                ctl.lock(nodes[prev].mu);
                if (!nodes[prev].finished) {
                  nodes[prev].succs.push_back(li);
                  coor::dep_retain(nodes[li].remaining);
                }
                ctl.unlock(nodes[prev].mu);
              }
              if (coor::dep_release(nodes[li].remaining)) {
                if (ring)
                  ring->push(li, policy);
                else
                  ctl.queue_push(li);
              }
            }
            // Empty flow: nobody completes a task, so the master closes.
            if (ring && n_tasks == 0) ring->close(policy);
          } else {
            for (;;) {
              const std::optional<std::uint64_t> li =
                  ring ? ring->pop_blocking(policy, nullptr, nullptr)
                       : ctl.queue_pop();
              if (!li) break;
              ctl.task_started(*li);
              // Crash: the worker that popped the task dies before
              // complete() — no finished mark, no successor releases, no
              // completed bump, no ring close.
              if (crash_mode_ && *li == crash_task_) return;
              ctl.task_finished(*li);
              // Engine::complete: mark finished + take the successor list
              // under the node mutex, then release each successor outside
              // it — exactly the production complete().
              ctl.lock(nodes[*li].mu);
              nodes[*li].finished = true;
              std::vector<std::uint64_t> succs = std::move(nodes[*li].succs);
              nodes[*li].succs.clear();
              ctl.unlock(nodes[*li].mu);
              for (std::uint64_t s : succs)
                if (coor::dep_release(nodes[s].remaining)) {
                  if (ring)
                    ring->push(s, policy);
                  else
                    ctl.queue_push(s);
                }
              // The last completer closes the ring — the production
              // Engine::complete's done transition.
              if (fetch_add(completed, std::uint64_t{1}) + 1 == n_tasks &&
                  ring)
                ring->close(policy);
            }
          }
          break;
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(n_threads_);
    for (std::uint32_t w = 0; w < n_threads_; ++w)
      threads.emplace_back([&, w] {
        tl_worker = w;
        try {
          body(w);
        } catch (const AbortRun&) {
        }
        ctl.mark_done();
      });

    // ---- schedule loop ---------------------------------------------------
    // Happens-before tracking for DPOR: per-thread clocks plus per-word
    // write/read release clocks — the same scheme (and the same
    // VectorClocks) as the analysis:: happens-before race checker.
    const std::size_t n_words = ctl.num_words() + 1;  // + the queue word
    analysis::VectorClocks tc(n_threads_, n_threads_);
    analysis::VectorClocks wrel(n_words, n_threads_);
    analysis::VectorClocks rrel(n_words, n_threads_);
    // Most recent step per (word, thread), split by write-likeness.
    std::vector<std::vector<std::int64_t>> last_any(
        n_words, std::vector<std::int64_t>(n_threads_, -1));
    std::vector<std::vector<std::int64_t>> last_write(
        n_words, std::vector<std::int64_t>(n_threads_, -1));
    auto word_row = [&](int word) -> std::size_t {
      return word == kQueueWord ? n_words - 1
                                : static_cast<std::size_t>(word);
    };

    const std::uint64_t all_mask =
        n_tasks >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << n_tasks) - 1);
    RunEnd end = RunEnd::kComplete;
    std::size_t step = 0;
    std::vector<std::uint32_t> enabled;
    std::vector<Op> ops;
    std::vector<std::uint32_t> schedule;

    for (;;) {
      const Controlled::Phase phase = ctl.wait_quiescent(enabled, ops);
      // Recovery phase 1: every quiescent point's completion frontier is a
      // state the supervisor could capture — the watchdog aborts survivors
      // mid-flight, so intermediate frontiers matter, not just final ones.
      if (crash_mode_ && forced == nullptr && frontiers_ != nullptr)
        frontiers_->insert(ctl.terminated_mask());
      if (phase == Controlled::Phase::kViolation) {
        const Violation v = *ctl.violation();
        record_violation(res, v, schedule);
        end = RunEnd::kViolation;
        break;
      }
      if (phase == Controlled::Phase::kAllDone) {
        if (!crash_mode_ && !ctl.all_tasks_terminated(all_mask)) {
          record_violation(
              res,
              {"deadlock",
               "run finished with unexecuted tasks (dispatch was lost)"},
              schedule);
          end = RunEnd::kViolation;
        }
        break;
      }
      if (phase == Controlled::Phase::kStuck) {
        const Violation v = ctl.classify_stuck();
        if (crash_mode_ && v.kind != "lost-wakeup") {
          // Expected worker-loss quiescence: survivors blocked on the dead
          // worker's never-published terminates (or an empty queue). The
          // supervisor's job starts here; lost wakeups stay violations —
          // a dropped notify is a protocol bug with or without a crash.
          break;
        }
        record_violation(res, v, schedule);
        end = RunEnd::kViolation;
        break;
      }
      if (step >= opts_.max_steps_per_run) {
        res.truncated = true;
        end = RunEnd::kPruned;
        break;
      }

      std::uint32_t choice = 0;
      if (forced != nullptr) {
        if (step >= forced->size() || !contains(enabled, (*forced)[step])) {
          record_violation(
              res, {"deadlock", "witness schedule does not replay"}, schedule);
          end = RunEnd::kViolation;
          break;
        }
        choice = (*forced)[step];
      } else if (step < stack_.size()) {
        choice = stack_[step].chosen;  // replaying the DFS prefix
      } else {
        // New state: snapshot, inherit the filtered sleep set, choose.
        Frame f;
        f.enabled = enabled;
        f.ops = ops;
        f.prev = schedule.empty() ? n_threads_ : schedule.back();
        f.prev_enabled = contains(enabled, f.prev);
        if (!stack_.empty()) {
          const Frame& p = stack_.back();
          f.preemptions = p.preemptions +
                          (p.prev_enabled && p.chosen != p.prev ? 1 : 0);
          if (opts_.dpor) {
            for (std::uint32_t s : p.sleep) {
              // A sleeping worker stays asleep while its pending op is
              // independent of what was just executed.
              const Op* sop = pending_op(p, s);
              if (sop != nullptr && !dependent(*sop, p.chosen_op))
                f.sleep.push_back(s);
            }
          }
        }
        bool found = false;
        bool bound_cut = false;
        // Prefer continuing the previous worker (fewer preemptions).
        std::vector<std::uint32_t> order;
        if (f.prev_enabled) order.push_back(f.prev);
        for (std::uint32_t w : enabled)
          if (w != f.prev) order.push_back(w);
        for (std::uint32_t w : order) {
          if (contains(f.sleep, w)) continue;
          if (exceeds_bound(f, w)) {
            bound_cut = true;
            continue;
          }
          choice = w;
          found = true;
          break;
        }
        if (!found) {
          // Sleep-blocked (every enabled worker is redundant here) or the
          // preemption bound cut the branch off.
          if (bound_cut) res.truncated = true;
          end = RunEnd::kPruned;
          break;
        }
        f.chosen = choice;
        f.chosen_op = *pending_op_of(enabled, ops, choice);
        if (opts_.dpor) {
          f.backtrack.push_back(choice);
        } else {
          f.backtrack = enabled;  // naive: explore every branch
        }
        f.explored.push_back(choice);
        stack_.push_back(std::move(f));
      }

      const Op op = *pending_op_of(enabled, ops, choice);
      if (forced == nullptr && step < stack_.size()) {
        stack_[step].chosen_op = op;
        // DPOR backtrack rule: find the most recent step on the same word,
        // dependent with this op, by another thread, not already ordered
        // before us by happens-before; that step's state must also try
        // running us first.
        const std::size_t row = word_row(op.word);
        std::int64_t j = -1;
        const auto& table = op.write_like ? last_any : last_write;
        for (std::uint32_t p = 0; p < n_threads_; ++p) {
          if (p == choice) continue;
          j = std::max(j, table[row][p]);
        }
        if (j >= 0 && opts_.dpor) {
          const Frame& fj = stack_[static_cast<std::size_t>(j)];
          const bool ordered =
              tc.row(choice)[fj.chosen] >= clock_at_[static_cast<std::size_t>(j)];
          if (!ordered) {
            Frame& target = stack_[static_cast<std::size_t>(j)];
            if (contains(target.enabled, choice)) {
              if (!contains(target.backtrack, choice))
                target.backtrack.push_back(choice);
            } else {
              for (std::uint32_t e : target.enabled)
                if (!contains(target.backtrack, e))
                  target.backtrack.push_back(e);
            }
          }
        }
        // Advance the clocks (write-likes synchronize with everything on
        // the word; reads only with write-likes).
        tc.row(choice)[choice] += 1;
        tc.join(choice, wrel.row(row));
        if (op.write_like) {
          tc.join(choice, rrel.row(row));
          wrel.assign(row, tc.row(choice));
        } else {
          rrel.join(row, tc.row(choice));
        }
        if (clock_at_.size() <= static_cast<std::size_t>(step))
          clock_at_.resize(step + 1);
        clock_at_[step] = tc.row(choice)[choice];
        last_any[row][choice] = static_cast<std::int64_t>(step);
        if (op.write_like)
          last_write[row][choice] = static_cast<std::int64_t>(step);
      }

      schedule.push_back(choice);
      ctl.grant(choice);
      ++step;
      ++res.steps;
    }

    ctl.teardown();
    for (std::thread& t : threads) t.join();
    if (end != RunEnd::kComplete && forced == nullptr) {
      // The aborted suffix of the stack must not survive into the next
      // iteration (the frames past the abort point were never completed).
      if (end == RunEnd::kPruned && stack_.size() > step)
        stack_.resize(step);
    }
    return end;
  }

  static const Op* pending_op_of(const std::vector<std::uint32_t>& enabled,
                                 const std::vector<Op>& ops,
                                 std::uint32_t w) {
    for (std::size_t i = 0; i < enabled.size(); ++i)
      if (enabled[i] == w) return &ops[i];
    return nullptr;
  }

  static const Op* pending_op(const Frame& f, std::uint32_t w) {
    return pending_op_of(f.enabled, f.ops, w);
  }

  /// Would choosing `w` in frame `f` exceed the preemption budget? A
  /// switch away from a still-enabled previous worker costs one.
  bool exceeds_bound(const Frame& f, std::uint32_t w) const {
    if (opts_.max_preemptions < 0) return false;
    if (!f.prev_enabled || w == f.prev) return false;
    return f.preemptions >=
           static_cast<std::uint32_t>(opts_.max_preemptions);
  }

  void record_violation(Result& res, const Violation& v,
                        const std::vector<std::uint32_t>& schedule) {
    if (v.kind == "deadlock") res.deadlock_free = false;
    else if (v.kind == "lost-wakeup") res.lost_wakeup_free = false;
    else if (v.kind == "refinement") res.refines_stf = false;
    else res.in_order = false;
    res.violation_kind = v.kind;
    res.violation = v.message;
    res.witness = schedule;
  }

  /// Standard stateless-DFS backtracking: deepest frame with an unexplored
  /// backtrack choice wins; the abandoned choice joins its sleep set.
  bool backtrack() {
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      std::uint32_t next = 0;
      bool found = false;
      for (std::uint32_t c : f.backtrack) {
        if (contains(f.explored, c)) continue;
        if (opts_.dpor && contains(f.sleep, c)) continue;
        next = c;
        found = true;
        break;
      }
      if (found) {
        if (opts_.dpor && !contains(f.sleep, f.chosen))
          f.sleep.push_back(f.chosen);
        f.chosen = next;
        f.explored.push_back(next);
        return true;
      }
      stack_.pop_back();
      clock_at_.resize(stack_.size());
    }
    return false;
  }

  const stf::TaskFlow& flow_;
  const rt::Mapping& mapping_;
  Options opts_;
  std::uint32_t n_threads_ = 0;
  CheckPlan plan_;
  std::vector<Frame> stack_;
  std::vector<std::uint64_t> clock_at_;  ///< own-clock value per step
  bool crash_mode_ = false;              ///< recovery phase 1
  stf::TaskId crash_task_ = 0;
  std::set<std::uint64_t>* frontiers_ = nullptr;
};

}  // namespace

Result verify(const stf::TaskFlow& flow, const rt::Mapping& mapping,
              const Options& opts) {
  RIO_ASSERT_MSG(flow.num_tasks() <= 64,
                 "mc::impl handles flows of at most 64 tasks");
  RIO_ASSERT_MSG(opts.workers >= 1 && opts.workers <= 4,
                 "mc::impl handles 1..4 virtual workers");
  if (!opts.recover) {
    Explorer ex(flow, mapping, opts);
    return ex.explore();
  }

  // Recovery verification — the two-phase model of engine::run_supervised.
  RIO_ASSERT_MSG(opts.workers >= 2,
                 "recovery verification needs >= 2 workers (one dies)");
  RIO_ASSERT_MSG(opts.crash_task < flow.num_tasks(),
                 "crash_task must name a task of the flow");
  support::Stopwatch sw;

  // Phase 1: crash exploration. The worker executing crash_task dies right
  // after the body; refinement / window / lost-wakeup checks stay armed,
  // and every reachable completion frontier is collected.
  Options o1 = opts;
  o1.recover = false;
  Explorer ex1(flow, mapping, o1);
  std::set<std::uint64_t> frontiers;
  ex1.set_crash(static_cast<stf::TaskId>(opts.crash_task), &frontiers);
  Result r = ex1.explore();
  r.frontiers = frontiers.size();
  if (!r.ok()) {
    r.seconds = sw.elapsed_s();
    return r;
  }

  // Phase 2: the resumed configuration — workers-1 threads under the
  // eviction rewrite. The real resume walks completed tasks through the
  // full acquire/terminate protocol (only bodies are skipped), so one
  // exhaustive exploration of this configuration covers the resumed run
  // for EVERY frontier phase 1 collected: the protocol state machine is
  // frontier-independent, only which bodies re-execute differs, and the
  // exact CompletionBoard bitmap makes that exactly-once by construction.
  Options o2 = opts;
  o2.recover = false;
  o2.workers = opts.workers - 1;
  rt::Mapping evicted;
  const rt::Mapping* m2 = &mapping;
  if (opts.engine != EngineKind::kCoor) {
    const stf::WorkerId dead =
        mapping(static_cast<stf::TaskId>(opts.crash_task));
    evicted = rt::mapping::evict(mapping, dead, opts.workers);
    m2 = &evicted;
  }
  Explorer ex2(flow, *m2, o2);
  const Result r2 = ex2.explore();
  r.explored += r2.explored;
  r.pruned += r2.pruned;
  r.steps += r2.steps;
  r.truncated |= r2.truncated;
  if (!r2.ok()) {
    r.deadlock_free = r2.deadlock_free;
    r.lost_wakeup_free = r2.lost_wakeup_free;
    r.refines_stf = r2.refines_stf;
    r.in_order = r2.in_order;
    r.violation = "resumed configuration (" +
                  std::to_string(o2.workers) + " workers, evicted): " +
                  r2.violation;
    r.violation_kind = r2.violation_kind;
    r.witness = r2.witness;
  }
  r.seconds = sw.elapsed_s();
  return r;
}

Result replay(const stf::TaskFlow& flow, const rt::Mapping& mapping,
              const Options& opts,
              const std::vector<std::uint32_t>& schedule) {
  RIO_ASSERT_MSG(flow.num_tasks() <= 64,
                 "mc::impl handles flows of at most 64 tasks");
  Explorer ex(flow, mapping, opts);
  return ex.replay(schedule);
}

}  // namespace rio::mc::impl
