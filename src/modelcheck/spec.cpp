#include "modelcheck/spec.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/assert.hpp"
#include "support/clock.hpp"
#include "stf/dependency.hpp"

namespace rio::mc {
namespace {

constexpr std::uint8_t kIdle = 0xFF;
constexpr std::uint32_t kMaxWorkers = 8;

/// Packs (pending bitset, per-worker active task) into two words.
struct StfState {
  std::uint64_t pending = 0;
  std::uint64_t actives = 0;  // 8 bits per worker, kIdle when idle

  friend bool operator==(const StfState&, const StfState&) = default;
};

struct StfHash {
  std::size_t operator()(const StfState& s) const noexcept {
    std::uint64_t h = s.pending * 0x9e3779b97f4a7c15ULL;
    h ^= s.actives + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

std::uint8_t active_of(std::uint64_t actives, std::uint32_t w) {
  return static_cast<std::uint8_t>(actives >> (8 * w));
}

std::uint64_t with_active(std::uint64_t actives, std::uint32_t w,
                          std::uint8_t task) {
  const std::uint64_t mask = 0xFFull << (8 * w);
  return (actives & ~mask) | (static_cast<std::uint64_t>(task) << (8 * w));
}

/// Bitmask of tasks currently being executed by some worker.
std::uint64_t active_mask(std::uint64_t actives, std::uint32_t workers) {
  std::uint64_t m = 0;
  for (std::uint32_t w = 0; w < workers; ++w) {
    const std::uint8_t a = active_of(actives, w);
    if (a != kIdle) m |= 1ull << a;
  }
  return m;
}

/// RunInOrder state: per worker, a progress index (tasks popped from its
/// mapped share) and an active flag, packed 9 bits per worker.
struct RioState {
  std::uint64_t packed = 0;
  friend bool operator==(const RioState&, const RioState&) = default;
};

struct RioHash {
  std::size_t operator()(const RioState& s) const noexcept {
    return static_cast<std::size_t>(s.packed * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace

SpecProblem::SpecProblem(const stf::TaskFlow& flow, std::uint32_t workers)
    : n_(static_cast<std::uint32_t>(flow.num_tasks())), workers_(workers) {
  RIO_ASSERT_MSG(n_ <= 64, "model checking instances are limited to 64 tasks");
  RIO_ASSERT_MSG(workers_ >= 1 && workers_ <= kMaxWorkers,
                 "1..8 workers supported");
  preds_.resize(n_, 0);
  conflicts_.resize(n_, 0);

  // The Appendix-B specifications model strict STF only; the commuting-
  // reduction extension would need a different TaskReady relation.
  for (const stf::Task& t : flow.tasks())
    for (const stf::Access& a : t.accesses)
      RIO_ASSERT_MSG(!is_reduction(a.mode),
                     "model checking does not support reduction accesses");

  stf::DependencyGraph graph(flow);
  for (std::uint32_t t = 0; t < n_; ++t)
    for (stf::TaskId p : graph.predecessors(t)) preds_[t] |= 1ull << p;

  // Conflict matrix: shared data with at least one write-side access.
  for (std::uint32_t a = 0; a < n_; ++a) {
    for (std::uint32_t b = a + 1; b < n_; ++b) {
      bool conflict = false;
      for (const stf::Access& xa : flow.task(a).accesses) {
        for (const stf::Access& xb : flow.task(b).accesses) {
          if (xa.data == xb.data &&
              (is_write(xa.mode) || is_write(xb.mode))) {
            conflict = true;
            break;
          }
        }
        if (conflict) break;
      }
      if (conflict) {
        conflicts_[a] |= 1ull << b;
        conflicts_[b] |= 1ull << a;
      }
    }
  }
}

CheckResult check_stf(const stf::TaskFlow& flow, std::uint32_t workers,
                      std::uint64_t max_states) {
  const SpecProblem prob(flow, workers);
  const std::uint32_t n = prob.num_tasks();
  CheckResult res;
  support::Stopwatch watch;

  StfState init;
  init.pending = n == 64 ? ~0ull : ((1ull << n) - 1);
  init.actives = ~0ull;  // all idle (every byte 0xFF)

  std::unordered_set<StfState, StfHash> seen;
  std::vector<StfState> frontier{init}, next;
  seen.insert(init);
  res.distinct_states = 1;
  bool terminated_seen = (init.pending == 0);

  auto check_state = [&](const StfState& s) {
    // DataRaceFreedom: no two active tasks conflict.
    std::uint64_t act = active_mask(s.actives, workers);
    std::uint64_t rest = act;
    while (rest) {
      const auto t = static_cast<std::uint32_t>(__builtin_ctzll(rest));
      rest &= rest - 1;
      if (prob.conflict_mask(t) & act & ~(1ull << t)) {
        if (res.race_free) {
          res.race_free = false;
          res.violation = "data race between active tasks";
        }
      }
    }
  };
  check_state(init);

  while (!frontier.empty()) {
    next.clear();
    for (const StfState& s : frontier) {
      const std::uint64_t act = active_mask(s.actives, workers);
      const std::uint64_t unfinished = s.pending | act;
      std::size_t succ_count = 0;

      auto visit = [&](const StfState& ns) {
        ++res.generated_states;
        ++succ_count;
        if (seen.size() >= max_states) {
          res.truncated = true;
          return;
        }
        if (seen.insert(ns).second) {
          ++res.distinct_states;
          check_state(ns);
          if (ns.pending == 0 && active_mask(ns.actives, workers) == 0)
            terminated_seen = true;
          next.push_back(ns);
        }
      };

      // ExecuteTask(w, t): idle worker starts a ready pending task.
      for (std::uint32_t w = 0; w < workers; ++w) {
        if (active_of(s.actives, w) != kIdle) continue;
        std::uint64_t cand = s.pending;
        while (cand) {
          const auto t = static_cast<std::uint32_t>(__builtin_ctzll(cand));
          cand &= cand - 1;
          // TaskReady: every earlier conflicting task terminated, i.e. no
          // predecessor still pending or active.
          if (prob.preds_mask(t) & unfinished) continue;
          StfState ns = s;
          ns.pending &= ~(1ull << t);
          ns.actives = with_active(ns.actives, w, static_cast<std::uint8_t>(t));
          visit(ns);
        }
      }
      // TerminateTask(w): active worker finishes.
      for (std::uint32_t w = 0; w < workers; ++w) {
        if (active_of(s.actives, w) == kIdle) continue;
        StfState ns = s;
        ns.actives = with_active(ns.actives, w, kIdle);
        visit(ns);
      }

      if (succ_count == 0) {
        ++res.terminal_states;
        if (!(s.pending == 0 && act == 0)) {
          res.deadlock_free = false;
          res.violation = "deadlocked state that is not Terminated";
        }
      }
      if (res.truncated) break;
    }
    if (res.truncated) break;
    frontier.swap(next);
  }

  res.termination_reached = terminated_seen;
  res.seconds = watch.elapsed_s();
  return res;
}

CheckResult check_run_in_order(const stf::TaskFlow& flow,
                               std::uint32_t workers,
                               const rt::Mapping& mapping,
                               bool check_refinement,
                               std::uint64_t max_states) {
  const SpecProblem prob(flow, workers);
  const std::uint32_t n = prob.num_tasks();
  CheckResult res;
  support::Stopwatch watch;

  // Per-worker mapped task lists in flow order (the in-order constraint).
  std::vector<std::vector<std::uint8_t>> share(workers);
  for (std::uint32_t t = 0; t < n; ++t) {
    const stf::WorkerId w = mapping(t);
    RIO_ASSERT_MSG(w < workers, "mapping out of range");
    share[w].push_back(static_cast<std::uint8_t>(t));
  }

  // State: per worker, progress index (tasks popped from its share) and
  // active flag (executing share[idx-1]). Packed 8+1 bits per worker.
  constexpr int kBits = 9;  // idx:8, active:1
  auto idx_of = [&](const RioState& s, std::uint32_t w) {
    return static_cast<std::uint32_t>((s.packed >> (kBits * w)) & 0xFF);
  };
  auto is_active = [&](const RioState& s, std::uint32_t w) {
    return ((s.packed >> (kBits * w + 8)) & 1) != 0;
  };
  auto with = [&](RioState s, std::uint32_t w, std::uint32_t idx,
                  bool active) {
    const std::uint64_t mask = 0x1FFull << (kBits * w);
    s.packed = (s.packed & ~mask) |
               ((static_cast<std::uint64_t>(idx) |
                 (active ? 0x100ull : 0ull))
                << (kBits * w));
    return s;
  };
  RIO_ASSERT_MSG(kBits * workers <= 63, "too many workers for packing");

  // Derived masks for guard evaluation.
  auto masks = [&](const RioState& s, std::uint64_t& pending,
                   std::uint64_t& active) {
    pending = 0;
    active = 0;
    for (std::uint32_t w = 0; w < workers; ++w) {
      const std::uint32_t idx = idx_of(s, w);
      for (std::uint32_t i = idx; i < share[w].size(); ++i)
        pending |= 1ull << share[w][i];
      if (is_active(s, w)) active |= 1ull << share[w][idx - 1];
    }
  };

  std::unordered_set<RioState, RioHash> seen;
  RioState init;
  std::vector<RioState> frontier{init}, next;
  seen.insert(init);
  res.distinct_states = 1;
  bool terminated_seen = (n == 0);

  auto check_state = [&](const RioState& s) {
    std::uint64_t pending, act;
    masks(s, pending, act);
    std::uint64_t rest = act;
    while (rest) {
      const auto t = static_cast<std::uint32_t>(__builtin_ctzll(rest));
      rest &= rest - 1;
      if (prob.conflict_mask(t) & act & ~(1ull << t)) {
        if (res.race_free) {
          res.race_free = false;
          res.violation = "data race between active tasks";
        }
      }
    }
  };

  while (!frontier.empty()) {
    next.clear();
    for (const RioState& s : frontier) {
      std::uint64_t pending, act;
      masks(s, pending, act);
      const std::uint64_t unfinished = pending | act;
      std::size_t succ_count = 0;

      auto visit = [&](const RioState& ns) {
        ++res.generated_states;
        ++succ_count;
        if (seen.size() >= max_states) {
          res.truncated = true;
          return;
        }
        if (seen.insert(ns).second) {
          ++res.distinct_states;
          check_state(ns);
          std::uint64_t np, na;
          masks(ns, np, na);
          if (np == 0 && na == 0) terminated_seen = true;
          next.push_back(ns);
        }
      };

      for (std::uint32_t w = 0; w < workers; ++w) {
        if (is_active(s, w)) {
          // TerminateTask(w).
          visit(with(s, w, idx_of(s, w), false));
        } else if (idx_of(s, w) < share[w].size()) {
          // ExecuteTask(w): only the FIRST pending task of w's share.
          const std::uint8_t t = share[w][idx_of(s, w)];
          if ((prob.preds_mask(t) & unfinished) == 0) {
            if (check_refinement) {
              // STF guard: t pending, ready, executing worker idle — all
              // true here by construction; verify the readiness condition
              // through the STF-side definition (conflicting earlier tasks
              // terminated) for the refinement theorem.
              std::uint64_t earlier_conflicts = 0;
              for (std::uint32_t u = 0; u < t; ++u)
                if (prob.conflict_mask(t) & (1ull << u))
                  earlier_conflicts |= 1ull << u;
              if (earlier_conflicts & unfinished) {
                res.refines_stf = false;
                res.violation = "RunInOrder step not allowed by STF";
              }
            }
            visit(with(s, w, idx_of(s, w) + 1, true));
          }
        }
      }

      if (succ_count == 0) {
        ++res.terminal_states;
        if (unfinished != 0) {
          res.deadlock_free = false;
          res.violation = "deadlocked RunInOrder state";
        }
      }
      if (res.truncated) break;
    }
    if (res.truncated) break;
    frontier.swap(next);
  }

  res.termination_reached = terminated_seen;
  res.seconds = watch.elapsed_s();
  return res;
}

}  // namespace rio::mc
