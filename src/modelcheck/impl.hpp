// mc::impl — implementation-level model checking of the real protocol code.
//
// spec.hpp enumerates the paper's TLA+ *specifications*; this module
// enumerates the interleavings of the *implementation*: the Algorithm 2
// routines of src/rio/data_object.hpp, the pruned executor's
// acquire/publish pairs, and COOR's dependency-counter protocol
// (src/coor/sync_ops.hpp) — the very same template functions production
// builds inline to raw atomics — instantiated with a checker-instrumented
// word type (the proto:: seam, src/rio/proto.hpp) and driven by a
// controlled scheduler that runs exactly one worker thread between any two
// shared-word operations.
//
// The search is a stateless depth-first enumeration over schedules with
// dynamic partial-order reduction: sleep sets plus happens-before-based
// backtrack points computed from analysis::VectorClocks. Interleavings are
// explored at shared-word-operation granularity under sequential
// consistency (weak-memory reorderings are TSan's job, not this checker's;
// see docs/protocol.md).
//
// Checked on every explored interleaving:
//   * refinement — each task start satisfies the STFSpec guard (every
//     earlier conflicting task already terminated), the same guard
//     mc::check_stf enumerates;
//   * in-order window invariants (rio / rio-pruned) — at task start each
//     shared word holds exactly the value the sequential prefix dictates;
//   * deadlock freedom — a stuck non-final state is reported with its
//     schedule;
//   * lost-wakeup freedom (kBlock policy) — a worker parked on a word
//     whose value has already moved on means a store was not followed by
//     the notify the seam contract requires.
//
// Flows are capped at 64 tasks (states pack into one machine word, like
// spec.hpp) and 4 virtual workers. A violation comes with a replayable
// schedule witness: replay() re-executes it deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/wait.hpp"
#include "coor/ready_ring.hpp"
#include "rio/mapping.hpp"
#include "stf/task_flow.hpp"

namespace rio::mc::impl {

/// Which execution model's protocol code to run under the scheduler.
enum class EngineKind : std::uint8_t { kRio, kRioPruned, kCoor };

constexpr const char* to_string(EngineKind e) noexcept {
  switch (e) {
    case EngineKind::kRio: return "rio";
    case EngineKind::kRioPruned: return "rio-pruned";
    case EngineKind::kCoor: return "coor";
  }
  return "?";
}

struct Options {
  EngineKind engine = EngineKind::kRio;
  std::uint32_t workers = 2;  ///< virtual workers (<= 4; coor adds a master)
  support::WaitPolicy policy = support::WaitPolicy::kBlock;
  /// Ready-queue implementation for kCoor: kRing checks the real
  /// ReadyRingT code (CAS claims, doorbell-pair parking) instantiated on
  /// the instrumented word type; kLocked models the mutex+condvar queue as
  /// one atomic push/pop step. Ignored by the rio engines.
  coor::QueueKind queue = coor::QueueKind::kLocked;
  bool dpor = true;           ///< false: naive full enumeration (tests)
  int max_preemptions = -1;   ///< bounded search; < 0 explores everything
  std::uint64_t max_interleavings = 200'000;  ///< exploration budget
  std::uint64_t max_steps_per_run = 1'000'000;  ///< runaway-schedule guard
  /// Deliberately broken shim for the lost-wakeup regression test: every
  /// proto::notify becomes a no-op, so a kBlock waiter that parks before
  /// the publish is never woken.
  bool drop_notify = false;

  /// Recovery verification (rioflow verify --recover): model the eviction
  /// protocol of engine::run_supervised. Phase 1 explores the run with the
  /// worker executing `crash_task` dying right after that task's body —
  /// its terminate is never published, exactly the production crash fault
  /// — accepting the resulting quiescent states (the loss the supervisor
  /// detects) while still checking refinement, the window invariants and
  /// lost-wakeup freedom up to the loss, and collecting every reachable
  /// completion frontier. Phase 2 then exhaustively explores the RESUMED
  /// configuration — workers-1 threads under the rt::mapping::evict
  /// rewrite — which is protocol-identical to the real resume (replayed
  /// tasks walk the full acquire/terminate ops, only their bodies are
  /// skipped), proving the evicted run refines STF and is deadlock-free
  /// for ANY captured frontier. Requires workers >= 2.
  bool recover = false;
  std::uint64_t crash_task = 0;  ///< the task whose executor dies
};

/// One verification outcome. `witness` is a schedule — the thread index
/// granted at each scheduling point (for coor, index `workers` is the
/// master) — and replays deterministically through replay().
struct Result {
  std::uint64_t explored = 0;   ///< complete interleavings executed
  std::uint64_t pruned = 0;     ///< branches skipped (sleep sets / bound)
  std::uint64_t steps = 0;      ///< total shared-word operations scheduled
  bool truncated = false;       ///< hit max_interleavings / step budget

  bool deadlock_free = true;
  bool lost_wakeup_free = true;
  bool refines_stf = true;      ///< STFSpec guard held at every task start
  bool in_order = true;         ///< window invariant held (rio engines)

  std::string violation;        ///< first violation, human readable
  std::string violation_kind;   ///< deadlock|lost-wakeup|refinement|in-order
  std::vector<std::uint32_t> witness;  ///< schedule reaching the violation
  double seconds = 0.0;
  /// Recovery mode: distinct completion frontiers observed across every
  /// explored crash interleaving (each one a supervisor capture point the
  /// resumed configuration was verified against).
  std::uint64_t frontiers = 0;

  [[nodiscard]] bool ok() const noexcept {
    return deadlock_free && lost_wakeup_free && refines_stf && in_order;
  }
};

/// Explores the interleaving space of `flow` under `mapping` (ignored by
/// kCoor, which schedules dynamically). Requires flow.num_tasks() <= 64,
/// no reduction accesses, and opts.workers in [1, 4].
Result verify(const stf::TaskFlow& flow, const rt::Mapping& mapping,
              const Options& opts);

/// Deterministically re-executes one schedule (e.g. a violation witness)
/// and checks just that interleaving. explored is 1 on a complete replay.
Result replay(const stf::TaskFlow& flow, const rt::Mapping& mapping,
              const Options& opts, const std::vector<std::uint32_t>& schedule);

}  // namespace rio::mc::impl
