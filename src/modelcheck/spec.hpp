// Explicit-state model checking of the paper's TLA+ specifications.
//
// Appendix B defines two modules: STFSpec (all executions the STF
// programming model allows — any order satisfying sequential consistency)
// and RunInOrder (the paper's execution model: tasks statically mapped,
// each worker executing its share in flow order). TLC verifies that (a)
// STF guarantees termination and data-race freedom and (b) RunInOrder
// refines STF. This module re-implements that verification as an explicit
// breadth-first state-space enumeration in C++ — the Table 1 experiment —
// over task flows of up to 64 tasks.
//
// The state encodings mirror the TLA+ variables exactly:
//   STF:        (pendingTasks, workerStates)
//   RunInOrder: (workerPendingTasks via per-worker progress index,
//                workerStates); terminatedTasks is derived.
//
// TaskReady in both specs reduces to "every earlier conflicting task has
// terminated", which equals "all direct dependency-DAG predecessors have
// terminated" because every conflicting pair is directly connected in the
// DAG built from STF access modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rio/mapping.hpp"
#include "stf/task_flow.hpp"

namespace rio::mc {

/// Problem instance for the checkers: dependency masks precomputed from a
/// flow (<= 64 tasks so states pack into machine words, as the paper's
/// instances do: LU 2x2 has 4 tasks, 3x3 has 19).
class SpecProblem {
 public:
  SpecProblem(const stf::TaskFlow& flow, std::uint32_t workers);

  [[nodiscard]] std::uint32_t num_tasks() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t workers() const noexcept { return workers_; }

  /// Bitmask of direct dependency predecessors of task t.
  [[nodiscard]] std::uint64_t preds_mask(std::uint32_t t) const {
    return preds_[t];
  }
  /// Bitmask of tasks conflicting with t (shared data, >= one write).
  [[nodiscard]] std::uint64_t conflict_mask(std::uint32_t t) const {
    return conflicts_[t];
  }

 private:
  std::uint32_t n_;
  std::uint32_t workers_;
  std::vector<std::uint64_t> preds_;
  std::vector<std::uint64_t> conflicts_;
};

/// Outcome of one state-space enumeration.
struct CheckResult {
  std::uint64_t generated_states = 0;  ///< successors computed (with dups)
  std::uint64_t distinct_states = 0;   ///< unique reachable states
  std::uint64_t terminal_states = 0;   ///< states with no successor
  double seconds = 0.0;

  bool race_free = true;          ///< DataRaceFreedom held in every state
  bool deadlock_free = true;      ///< every terminal state is Terminated
  bool termination_reached = true;///< the Terminated state is reachable
  bool refines_stf = true;        ///< RunInOrder-only: STF allows each step
  bool truncated = false;         ///< hit max_states before exhausting

  std::string violation;          ///< first violation description, if any

  [[nodiscard]] bool ok() const noexcept {
    return race_free && deadlock_free && termination_reached && refines_stf &&
           !truncated;
  }
};

/// Enumerates the STFSpec state space (Appendix B.1): any idle worker may
/// start any ready pending task; any active worker may terminate its task.
CheckResult check_stf(const stf::TaskFlow& flow, std::uint32_t workers,
                      std::uint64_t max_states = 50'000'000);

/// Enumerates the RunInOrder state space (Appendix B.2) under `mapping`:
/// each worker may only start the NEXT task of its mapped share. When
/// `check_refinement`, every Execute step is additionally validated against
/// the STF guard (the paper's "RunInOrder implements STF" theorem).
CheckResult check_run_in_order(const stf::TaskFlow& flow,
                               std::uint32_t workers,
                               const rt::Mapping& mapping,
                               bool check_refinement = true,
                               std::uint64_t max_states = 50'000'000);

}  // namespace rio::mc
