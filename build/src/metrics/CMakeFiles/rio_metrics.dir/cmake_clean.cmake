file(REMOVE_RECURSE
  "CMakeFiles/rio_metrics.dir/efficiency.cpp.o"
  "CMakeFiles/rio_metrics.dir/efficiency.cpp.o.d"
  "librio_metrics.a"
  "librio_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
