# Empty compiler generated dependencies file for rio_metrics.
# This may be replaced when dependencies are built.
