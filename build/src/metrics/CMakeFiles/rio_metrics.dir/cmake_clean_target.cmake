file(REMOVE_RECURSE
  "librio_metrics.a"
)
