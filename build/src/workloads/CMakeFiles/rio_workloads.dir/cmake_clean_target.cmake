file(REMOVE_RECURSE
  "librio_workloads.a"
)
