file(REMOVE_RECURSE
  "CMakeFiles/rio_workloads.dir/cholesky.cpp.o"
  "CMakeFiles/rio_workloads.dir/cholesky.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/dense.cpp.o"
  "CMakeFiles/rio_workloads.dir/dense.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/gemm.cpp.o"
  "CMakeFiles/rio_workloads.dir/gemm.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/hpl.cpp.o"
  "CMakeFiles/rio_workloads.dir/hpl.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/kernels.cpp.o"
  "CMakeFiles/rio_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/lu.cpp.o"
  "CMakeFiles/rio_workloads.dir/lu.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/stencil.cpp.o"
  "CMakeFiles/rio_workloads.dir/stencil.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/rio_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/rio_workloads.dir/taskbench.cpp.o"
  "CMakeFiles/rio_workloads.dir/taskbench.cpp.o.d"
  "librio_workloads.a"
  "librio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
