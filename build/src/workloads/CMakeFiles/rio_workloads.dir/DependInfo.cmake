
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cholesky.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/cholesky.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/cholesky.cpp.o.d"
  "/root/repo/src/workloads/dense.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/dense.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/dense.cpp.o.d"
  "/root/repo/src/workloads/gemm.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/gemm.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/gemm.cpp.o.d"
  "/root/repo/src/workloads/hpl.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/hpl.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/hpl.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/workloads/lu.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/lu.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/lu.cpp.o.d"
  "/root/repo/src/workloads/stencil.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/stencil.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/stencil.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/taskbench.cpp" "src/workloads/CMakeFiles/rio_workloads.dir/taskbench.cpp.o" "gcc" "src/workloads/CMakeFiles/rio_workloads.dir/taskbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stf/CMakeFiles/rio_stf.dir/DependInfo.cmake"
  "/root/repo/build/src/rio/CMakeFiles/rio_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rio_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
