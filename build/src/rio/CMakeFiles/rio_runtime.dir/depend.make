# Empty dependencies file for rio_runtime.
# This may be replaced when dependencies are built.
