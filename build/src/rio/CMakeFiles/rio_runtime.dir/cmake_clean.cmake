file(REMOVE_RECURSE
  "CMakeFiles/rio_runtime.dir/pruning.cpp.o"
  "CMakeFiles/rio_runtime.dir/pruning.cpp.o.d"
  "CMakeFiles/rio_runtime.dir/runtime.cpp.o"
  "CMakeFiles/rio_runtime.dir/runtime.cpp.o.d"
  "librio_runtime.a"
  "librio_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
