file(REMOVE_RECURSE
  "librio_runtime.a"
)
