file(REMOVE_RECURSE
  "librio_support.a"
)
