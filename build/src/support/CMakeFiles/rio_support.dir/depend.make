# Empty dependencies file for rio_support.
# This may be replaced when dependencies are built.
