file(REMOVE_RECURSE
  "CMakeFiles/rio_coor.dir/runtime.cpp.o"
  "CMakeFiles/rio_coor.dir/runtime.cpp.o.d"
  "librio_coor.a"
  "librio_coor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_coor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
