file(REMOVE_RECURSE
  "librio_coor.a"
)
