# Empty compiler generated dependencies file for rio_coor.
# This may be replaced when dependencies are built.
