file(REMOVE_RECURSE
  "librio_mc.a"
)
