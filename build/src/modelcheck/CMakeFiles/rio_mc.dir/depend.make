# Empty dependencies file for rio_mc.
# This may be replaced when dependencies are built.
