file(REMOVE_RECURSE
  "CMakeFiles/rio_mc.dir/spec.cpp.o"
  "CMakeFiles/rio_mc.dir/spec.cpp.o.d"
  "librio_mc.a"
  "librio_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
