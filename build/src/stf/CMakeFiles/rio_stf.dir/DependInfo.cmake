
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stf/dependency.cpp" "src/stf/CMakeFiles/rio_stf.dir/dependency.cpp.o" "gcc" "src/stf/CMakeFiles/rio_stf.dir/dependency.cpp.o.d"
  "/root/repo/src/stf/graph_export.cpp" "src/stf/CMakeFiles/rio_stf.dir/graph_export.cpp.o" "gcc" "src/stf/CMakeFiles/rio_stf.dir/graph_export.cpp.o.d"
  "/root/repo/src/stf/sequential.cpp" "src/stf/CMakeFiles/rio_stf.dir/sequential.cpp.o" "gcc" "src/stf/CMakeFiles/rio_stf.dir/sequential.cpp.o.d"
  "/root/repo/src/stf/trace.cpp" "src/stf/CMakeFiles/rio_stf.dir/trace.cpp.o" "gcc" "src/stf/CMakeFiles/rio_stf.dir/trace.cpp.o.d"
  "/root/repo/src/stf/trace_export.cpp" "src/stf/CMakeFiles/rio_stf.dir/trace_export.cpp.o" "gcc" "src/stf/CMakeFiles/rio_stf.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rio_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
