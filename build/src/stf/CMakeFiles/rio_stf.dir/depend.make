# Empty dependencies file for rio_stf.
# This may be replaced when dependencies are built.
