file(REMOVE_RECURSE
  "CMakeFiles/rio_stf.dir/dependency.cpp.o"
  "CMakeFiles/rio_stf.dir/dependency.cpp.o.d"
  "CMakeFiles/rio_stf.dir/graph_export.cpp.o"
  "CMakeFiles/rio_stf.dir/graph_export.cpp.o.d"
  "CMakeFiles/rio_stf.dir/sequential.cpp.o"
  "CMakeFiles/rio_stf.dir/sequential.cpp.o.d"
  "CMakeFiles/rio_stf.dir/trace.cpp.o"
  "CMakeFiles/rio_stf.dir/trace.cpp.o.d"
  "CMakeFiles/rio_stf.dir/trace_export.cpp.o"
  "CMakeFiles/rio_stf.dir/trace_export.cpp.o.d"
  "librio_stf.a"
  "librio_stf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_stf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
