file(REMOVE_RECURSE
  "librio_stf.a"
)
