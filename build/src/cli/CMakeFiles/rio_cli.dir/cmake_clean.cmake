file(REMOVE_RECURSE
  "CMakeFiles/rio_cli.dir/cli.cpp.o"
  "CMakeFiles/rio_cli.dir/cli.cpp.o.d"
  "librio_cli.a"
  "librio_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
