# Empty dependencies file for rio_cli.
# This may be replaced when dependencies are built.
