file(REMOVE_RECURSE
  "librio_cli.a"
)
