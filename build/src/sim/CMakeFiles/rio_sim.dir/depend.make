# Empty dependencies file for rio_sim.
# This may be replaced when dependencies are built.
