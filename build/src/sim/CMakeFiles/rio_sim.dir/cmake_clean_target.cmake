file(REMOVE_RECURSE
  "librio_sim.a"
)
