file(REMOVE_RECURSE
  "CMakeFiles/rio_sim.dir/coor_sim.cpp.o"
  "CMakeFiles/rio_sim.dir/coor_sim.cpp.o.d"
  "CMakeFiles/rio_sim.dir/hybrid_sim.cpp.o"
  "CMakeFiles/rio_sim.dir/hybrid_sim.cpp.o.d"
  "CMakeFiles/rio_sim.dir/rio_sim.cpp.o"
  "CMakeFiles/rio_sim.dir/rio_sim.cpp.o.d"
  "librio_sim.a"
  "librio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
