# Empty compiler generated dependencies file for rio_hybrid.
# This may be replaced when dependencies are built.
