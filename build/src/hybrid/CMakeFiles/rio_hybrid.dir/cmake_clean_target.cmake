file(REMOVE_RECURSE
  "librio_hybrid.a"
)
