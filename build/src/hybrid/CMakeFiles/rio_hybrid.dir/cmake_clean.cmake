file(REMOVE_RECURSE
  "CMakeFiles/rio_hybrid.dir/runtime.cpp.o"
  "CMakeFiles/rio_hybrid.dir/runtime.cpp.o.d"
  "librio_hybrid.a"
  "librio_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
