file(REMOVE_RECURSE
  "CMakeFiles/rioflow.dir/tools/rioflow.cpp.o"
  "CMakeFiles/rioflow.dir/tools/rioflow.cpp.o.d"
  "rioflow"
  "rioflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rioflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
