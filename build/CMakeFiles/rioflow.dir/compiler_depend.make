# Empty compiler generated dependencies file for rioflow.
# This may be replaced when dependencies are built.
