# Empty dependencies file for pivoted_lu_hybrid.
# This may be replaced when dependencies are built.
