file(REMOVE_RECURSE
  "CMakeFiles/pivoted_lu_hybrid.dir/pivoted_lu_hybrid.cpp.o"
  "CMakeFiles/pivoted_lu_hybrid.dir/pivoted_lu_hybrid.cpp.o.d"
  "pivoted_lu_hybrid"
  "pivoted_lu_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivoted_lu_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
