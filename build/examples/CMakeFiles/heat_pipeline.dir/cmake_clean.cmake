file(REMOVE_RECURSE
  "CMakeFiles/heat_pipeline.dir/heat_pipeline.cpp.o"
  "CMakeFiles/heat_pipeline.dir/heat_pipeline.cpp.o.d"
  "heat_pipeline"
  "heat_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
