# Empty dependencies file for heat_pipeline.
# This may be replaced when dependencies are built.
