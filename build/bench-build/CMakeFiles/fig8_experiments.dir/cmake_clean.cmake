file(REMOVE_RECURSE
  "../bench/fig8_experiments"
  "../bench/fig8_experiments.pdb"
  "CMakeFiles/fig8_experiments.dir/fig8_experiments.cpp.o"
  "CMakeFiles/fig8_experiments.dir/fig8_experiments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
