# Empty dependencies file for fig8_experiments.
# This may be replaced when dependencies are built.
