# Empty compiler generated dependencies file for fig3_kernel_efficiency.
# This may be replaced when dependencies are built.
