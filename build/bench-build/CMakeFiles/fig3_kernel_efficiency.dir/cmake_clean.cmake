file(REMOVE_RECURSE
  "../bench/fig3_kernel_efficiency"
  "../bench/fig3_kernel_efficiency.pdb"
  "CMakeFiles/fig3_kernel_efficiency.dir/fig3_kernel_efficiency.cpp.o"
  "CMakeFiles/fig3_kernel_efficiency.dir/fig3_kernel_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kernel_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
