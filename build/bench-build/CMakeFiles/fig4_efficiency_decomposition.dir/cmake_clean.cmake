file(REMOVE_RECURSE
  "../bench/fig4_efficiency_decomposition"
  "../bench/fig4_efficiency_decomposition.pdb"
  "CMakeFiles/fig4_efficiency_decomposition.dir/fig4_efficiency_decomposition.cpp.o"
  "CMakeFiles/fig4_efficiency_decomposition.dir/fig4_efficiency_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_efficiency_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
