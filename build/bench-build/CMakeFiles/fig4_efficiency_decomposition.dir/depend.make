# Empty dependencies file for fig4_efficiency_decomposition.
# This may be replaced when dependencies are built.
