# Empty dependencies file for metg.
# This may be replaced when dependencies are built.
