file(REMOVE_RECURSE
  "../bench/metg"
  "../bench/metg.pdb"
  "CMakeFiles/metg.dir/metg.cpp.o"
  "CMakeFiles/metg.dir/metg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
