file(REMOVE_RECURSE
  "../bench/hpl_mixed_granularity"
  "../bench/hpl_mixed_granularity.pdb"
  "CMakeFiles/hpl_mixed_granularity.dir/hpl_mixed_granularity.cpp.o"
  "CMakeFiles/hpl_mixed_granularity.dir/hpl_mixed_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_mixed_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
