# Empty dependencies file for hpl_mixed_granularity.
# This may be replaced when dependencies are built.
