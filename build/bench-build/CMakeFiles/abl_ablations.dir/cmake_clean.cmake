file(REMOVE_RECURSE
  "../bench/abl_ablations"
  "../bench/abl_ablations.pdb"
  "CMakeFiles/abl_ablations.dir/abl_ablations.cpp.o"
  "CMakeFiles/abl_ablations.dir/abl_ablations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
