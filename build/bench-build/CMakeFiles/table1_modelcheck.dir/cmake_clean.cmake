file(REMOVE_RECURSE
  "../bench/table1_modelcheck"
  "../bench/table1_modelcheck.pdb"
  "CMakeFiles/table1_modelcheck.dir/table1_modelcheck.cpp.o"
  "CMakeFiles/table1_modelcheck.dir/table1_modelcheck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
