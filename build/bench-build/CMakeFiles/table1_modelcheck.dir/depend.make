# Empty dependencies file for table1_modelcheck.
# This may be replaced when dependencies are built.
