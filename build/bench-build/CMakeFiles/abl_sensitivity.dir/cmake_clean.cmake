file(REMOVE_RECURSE
  "../bench/abl_sensitivity"
  "../bench/abl_sensitivity.pdb"
  "CMakeFiles/abl_sensitivity.dir/abl_sensitivity.cpp.o"
  "CMakeFiles/abl_sensitivity.dir/abl_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
