# Empty compiler generated dependencies file for fig7_workers.
# This may be replaced when dependencies are built.
