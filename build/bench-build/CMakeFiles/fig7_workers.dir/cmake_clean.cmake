file(REMOVE_RECURSE
  "../bench/fig7_workers"
  "../bench/fig7_workers.pdb"
  "CMakeFiles/fig7_workers.dir/fig7_workers.cpp.o"
  "CMakeFiles/fig7_workers.dir/fig7_workers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
