file(REMOVE_RECURSE
  "../bench/abl_straggler"
  "../bench/abl_straggler.pdb"
  "CMakeFiles/abl_straggler.dir/abl_straggler.cpp.o"
  "CMakeFiles/abl_straggler.dir/abl_straggler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
