file(REMOVE_RECURSE
  "../bench/abl_locality"
  "../bench/abl_locality.pdb"
  "CMakeFiles/abl_locality.dir/abl_locality.cpp.o"
  "CMakeFiles/abl_locality.dir/abl_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
