# Empty compiler generated dependencies file for fig2_gemm_time.
# This may be replaced when dependencies are built.
