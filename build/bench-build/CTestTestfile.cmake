# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig2_gemm_time "/root/repo/build/bench/fig2_gemm_time" "--quick")
set_tests_properties(bench_smoke_fig2_gemm_time PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3_kernel_efficiency "/root/repo/build/bench/fig3_kernel_efficiency" "--quick")
set_tests_properties(bench_smoke_fig3_kernel_efficiency PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4_efficiency_decomposition "/root/repo/build/bench/fig4_efficiency_decomposition" "--quick")
set_tests_properties(bench_smoke_fig4_efficiency_decomposition PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6_counter_scaling "/root/repo/build/bench/fig6_counter_scaling" "--quick")
set_tests_properties(bench_smoke_fig6_counter_scaling PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7_workers "/root/repo/build/bench/fig7_workers" "--quick")
set_tests_properties(bench_smoke_fig7_workers PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_experiments "/root/repo/build/bench/fig8_experiments" "--quick")
set_tests_properties(bench_smoke_fig8_experiments PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table1_modelcheck "/root/repo/build/bench/table1_modelcheck" "--quick")
set_tests_properties(bench_smoke_table1_modelcheck PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_ablations "/root/repo/build/bench/abl_ablations" "--quick")
set_tests_properties(bench_smoke_abl_ablations PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_sensitivity "/root/repo/build/bench/abl_sensitivity" "--quick")
set_tests_properties(bench_smoke_abl_sensitivity PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_straggler "/root/repo/build/bench/abl_straggler" "--quick")
set_tests_properties(bench_smoke_abl_straggler PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_abl_locality "/root/repo/build/bench/abl_locality" "--quick")
set_tests_properties(bench_smoke_abl_locality PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_hpl_mixed_granularity "/root/repo/build/bench/hpl_mixed_granularity" "--quick")
set_tests_properties(bench_smoke_hpl_mixed_granularity PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_metg "/root/repo/build/bench/metg" "--quick")
set_tests_properties(bench_smoke_metg PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
