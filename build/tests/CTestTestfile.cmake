# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/stf_test[1]_include.cmake")
include("/root/repo/build/tests/rio_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/coor_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/modelcheck_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/taskbench_test[1]_include.cmake")
include("/root/repo/build/tests/tooling_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/priority_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
