
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/modelcheck_test.cpp" "tests/CMakeFiles/modelcheck_test.dir/modelcheck_test.cpp.o" "gcc" "tests/CMakeFiles/modelcheck_test.dir/modelcheck_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/modelcheck/CMakeFiles/rio_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rio_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/rio/CMakeFiles/rio_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stf/CMakeFiles/rio_stf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rio_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
