# Empty compiler generated dependencies file for stf_test.
# This may be replaced when dependencies are built.
