file(REMOVE_RECURSE
  "CMakeFiles/stf_test.dir/stf_test.cpp.o"
  "CMakeFiles/stf_test.dir/stf_test.cpp.o.d"
  "stf_test"
  "stf_test.pdb"
  "stf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
