# Empty compiler generated dependencies file for coor_test.
# This may be replaced when dependencies are built.
