file(REMOVE_RECURSE
  "CMakeFiles/coor_test.dir/coor_test.cpp.o"
  "CMakeFiles/coor_test.dir/coor_test.cpp.o.d"
  "coor_test"
  "coor_test.pdb"
  "coor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
