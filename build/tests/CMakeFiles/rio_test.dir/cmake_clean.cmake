file(REMOVE_RECURSE
  "CMakeFiles/rio_test.dir/rio_test.cpp.o"
  "CMakeFiles/rio_test.dir/rio_test.cpp.o.d"
  "rio_test"
  "rio_test.pdb"
  "rio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
