# Empty dependencies file for taskbench_test.
# This may be replaced when dependencies are built.
