file(REMOVE_RECURSE
  "CMakeFiles/taskbench_test.dir/taskbench_test.cpp.o"
  "CMakeFiles/taskbench_test.dir/taskbench_test.cpp.o.d"
  "taskbench_test"
  "taskbench_test.pdb"
  "taskbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
